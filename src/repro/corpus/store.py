"""Content-addressed trace corpus store.

Layout (everything under one root, default
``~/.cache/repro-btb/corpus``, overridable via ``REPRO_CORPUS_DIR``)::

    <root>/v<SCHEMA>/manifests/<name>.json      one manifest per trace
    <root>/v<SCHEMA>/shards/<shard_dir>/        columnar .npz shards
        000000.npz, 000001.npz, ...

The manifest records everything needed to open, verify, and cache-key
the trace: the **content hash** (SHA-256 over the canonical packed
record stream — independent of shard size, source format, and
compression, so re-ingesting identical content from a different file
yields the same hash), instruction count, the shard list with per-file
digests, a branch-mix summary, and format provenance. ``shard_dir`` is
``<content_hash[:32]>-n<shard_insts>``: content-addressed, but distinct
per sharding so a re-ingest at a different shard size never clobbers a
store another reader is using — :meth:`CorpusStore.gc` later removes
shard directories no manifest references.

Ingestion is **streaming**: records flow one at a time from the format
adapters (:mod:`repro.corpus.formats`) into a bounded shard buffer that
is flushed to disk every ``shard_insts`` instructions — peak Python-side
memory is one shard regardless of trace length (the
:class:`IngestResult` reports the observed ``peak_buffered`` so tests
can verify it). Manifest writes reuse the ``.lock``-sentinel + atomic
rename discipline of :mod:`repro.core.exec.diskcache`; shards are staged
into a temp directory and atomically renamed into place, so a killed
ingest never leaves a half-visible trace.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import struct
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.common.types import LINE_BYTES, BranchType
from repro.core.exec.diskcache import atomic_write
from repro.corpus.formats import detect_format, iter_records
from repro.trace.trace import Trace

#: Environment variable overriding the corpus root directory.
ENV_CORPUS_DIR = "REPRO_CORPUS_DIR"

#: Default corpus root (expanded at construction time).
DEFAULT_CORPUS_DIR = "~/.cache/repro-btb/corpus"

#: Version of the on-disk corpus layout. Bump on incompatible changes;
#: old stores then live under a stale ``v<N>/`` directory.
CORPUS_SCHEMA = 1

#: Default instructions per shard. 64 Ki instructions x 10 int64 columns
#: = 5 MiB per shard uncompressed — big enough to amortize file-open
#: cost, small enough that the ingest buffer and one prefetched shard
#: stay cheap.
DEFAULT_SHARD_INSTS = 65_536

#: Struct layout of one canonical record for content hashing (10 little-
#: endian int64s, Trace._COLUMNS order). Hashing the packed records —
#: not the shard files — makes the content hash independent of shard
#: size and npz metadata.
_RECORD_STRUCT = struct.Struct("<10q")


class CorpusError(RuntimeError):
    """Raised for corpus-store failures: unknown entries, bad manifests,
    integrity violations. Always names the entry or path involved."""


def default_corpus_dir() -> Path:
    """Corpus root: ``$REPRO_CORPUS_DIR`` if set, else the default."""
    return Path(os.environ.get(ENV_CORPUS_DIR) or DEFAULT_CORPUS_DIR).expanduser()


@dataclass(frozen=True)
class ShardInfo:
    """One columnar shard: file name (relative to the shard dir),
    instruction count, and SHA-256 of the file bytes (for ``verify``)."""

    file: str
    insts: int
    sha256: str


@dataclass
class Manifest:
    """Everything the store knows about one ingested trace."""

    name: str
    content_hash: str
    instructions: int
    shard_insts: int
    shard_dir: str
    shards: List[ShardInfo]
    branch_mix: Dict[str, float]
    provenance: Dict[str, object]
    schema: int = CORPUS_SCHEMA

    def to_json(self) -> dict:
        return {
            "schema": self.schema,
            "name": self.name,
            "content_hash": self.content_hash,
            "instructions": self.instructions,
            "shard_insts": self.shard_insts,
            "shard_dir": self.shard_dir,
            "shards": [
                {"file": s.file, "insts": s.insts, "sha256": s.sha256}
                for s in self.shards
            ],
            "branch_mix": self.branch_mix,
            "provenance": self.provenance,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "Manifest":
        return cls(
            name=str(payload["name"]),
            content_hash=str(payload["content_hash"]),
            instructions=int(payload["instructions"]),
            shard_insts=int(payload["shard_insts"]),
            shard_dir=str(payload["shard_dir"]),
            shards=[
                ShardInfo(
                    file=str(s["file"]),
                    insts=int(s["insts"]),
                    sha256=str(s["sha256"]),
                )
                for s in payload["shards"]
            ],
            branch_mix={
                str(k): float(v) for k, v in payload["branch_mix"].items()
            },
            provenance=dict(payload["provenance"]),
            schema=int(payload["schema"]),
        )


@dataclass
class IngestResult:
    """Outcome of one ingestion, including the streaming-memory evidence."""

    manifest: Manifest
    instructions: int
    shards: int
    #: Largest number of records ever buffered in Python at once —
    #: bounded by ``shard_insts`` whatever the trace length.
    peak_buffered: int
    seconds: float
    #: True when an identical shard directory already existed (identical
    #: content re-ingested at the same shard size).
    reused_shards: bool = False


class _BranchMix:
    """Streaming branch-mix summary, one update per record."""

    def __init__(self) -> None:
        self.counts = {f"branches_{bt.name.lower()}": 0 for bt in BranchType
                       if bt != BranchType.NONE}
        self.branches = 0
        self.taken = 0
        self.loads = 0
        self.stores = 0
        self.lines: set = set()

    def update(self, record) -> None:
        self.lines.add(record[0] // LINE_BYTES)
        bt = record[1]
        if bt:
            self.branches += 1
            self.counts[f"branches_{BranchType(bt).name.lower()}"] += 1
            if record[2]:
                self.taken += 1
        if record[7]:
            self.loads += 1
        if record[8]:
            self.stores += 1

    def summary(self, instructions: int) -> Dict[str, float]:
        out: Dict[str, float] = {
            "instructions": instructions,
            "branches": self.branches,
            "taken_branches": self.taken,
            "loads": self.loads,
            "stores": self.stores,
            "code_footprint_bytes": len(self.lines) * LINE_BYTES,
        }
        out.update(self.counts)
        if self.taken:
            out["mean_dynamic_bb_size"] = instructions / self.taken
        return out


class _ShardWriter:
    """Bounded buffer that flushes columnar ``.npz`` shards to a staging
    directory, hashing the canonical record stream as it goes."""

    def __init__(self, staging: Path, shard_insts: int) -> None:
        self.staging = staging
        self.shard_insts = shard_insts
        self.columns: List[List[int]] = [[] for _ in Trace._COLUMNS]
        self.shards: List[ShardInfo] = []
        self.content = hashlib.sha256()
        self.instructions = 0
        self.peak_buffered = 0

    def add(self, record) -> None:
        self.content.update(_RECORD_STRUCT.pack(*record))
        for column, value in zip(self.columns, record):
            column.append(value)
        self.instructions += 1
        buffered = len(self.columns[0])
        if buffered > self.peak_buffered:
            self.peak_buffered = buffered
        if buffered >= self.shard_insts:
            self.flush()

    def flush(self) -> None:
        count = len(self.columns[0])
        if not count:
            return
        arrays = {
            name: np.asarray(col, dtype=np.int64)
            for name, col in zip(Trace._COLUMNS, self.columns)
        }
        path = self.staging / f"{len(self.shards):06d}.npz"
        # Uncompressed npz: members are ZIP_STORED, which the reader can
        # memory-map directly (see repro.corpus.reader).
        np.savez(str(path), **arrays)
        self.shards.append(
            ShardInfo(
                file=path.name,
                insts=count,
                sha256=hashlib.sha256(path.read_bytes()).hexdigest(),
            )
        )
        for column in self.columns:
            column.clear()


class CorpusStore:
    """Content-addressed, sharded trace store (see module docstring)."""

    def __init__(self, root=None) -> None:
        self.root = Path(root).expanduser() if root else default_corpus_dir()
        self.version_dir = self.root / f"v{CORPUS_SCHEMA}"
        self.manifests_dir = self.version_dir / "manifests"
        self.shards_root = self.version_dir / "shards"

    # -- paths ---------------------------------------------------------------

    def manifest_path(self, name: str) -> Path:
        return self.manifests_dir / f"{name}.json"

    def shard_dir_path(self, manifest: Manifest) -> Path:
        return self.shards_root / manifest.shard_dir

    # -- catalog -------------------------------------------------------------

    def names(self) -> List[str]:
        """Sorted names of every ingested trace."""
        if not self.manifests_dir.is_dir():
            return []
        return sorted(p.stem for p in self.manifests_dir.glob("*.json"))

    def get(self, name: str) -> Manifest:
        """Manifest of entry *name*; raises :class:`CorpusError` when the
        entry is missing or its manifest is unreadable."""
        path = self.manifest_path(name)
        try:
            payload = json.loads(path.read_text())
            manifest = Manifest.from_json(payload)
        except FileNotFoundError:
            known = ", ".join(self.names()) or "(corpus is empty)"
            raise CorpusError(
                f"no corpus entry named {name!r} under {self.root}; "
                f"ingested: {known}"
            ) from None
        except Exception as exc:
            raise CorpusError(f"unreadable corpus manifest {path}: {exc}") from None
        if manifest.schema != CORPUS_SCHEMA:
            raise CorpusError(
                f"corpus manifest {path} has schema {manifest.schema}, "
                f"expected {CORPUS_SCHEMA}"
            )
        return manifest

    def manifests(self) -> List[Manifest]:
        return [self.get(name) for name in self.names()]

    # -- ingestion -----------------------------------------------------------

    def ingest(
        self,
        source,
        name: Optional[str] = None,
        fmt: Optional[str] = None,
        shard_insts: int = DEFAULT_SHARD_INSTS,
    ) -> IngestResult:
        """Stream *source* into the store; returns an :class:`IngestResult`.

        *name* defaults to the source file name without suffixes. An
        existing entry of the same name is replaced (its old shard
        directory becomes garbage for :meth:`gc` unless still shared).
        """
        t0 = time.perf_counter()
        source = str(source)
        fmt = fmt or detect_format(source)
        if name is None:
            name = Path(source).name
            for _ in range(3):  # .csv.gz etc.
                stem = Path(name).stem
                if stem == name:
                    break
                name = stem
        if not name or "/" in name or name.startswith("."):
            raise CorpusError(f"invalid corpus entry name {name!r}")
        if shard_insts < 1:
            raise CorpusError(f"shard_insts must be positive, got {shard_insts}")

        self.shards_root.mkdir(parents=True, exist_ok=True)
        staging = Path(
            tempfile.mkdtemp(dir=str(self.shards_root), prefix=".ingest-")
        )
        mix = _BranchMix()
        writer = _ShardWriter(staging, shard_insts)
        try:
            for record in iter_records(source, fmt):
                writer.add(record)
                mix.update(record)
            writer.flush()
            if not writer.instructions:
                raise CorpusError(f"{source}: trace contains no instructions")
            content_hash = writer.content.hexdigest()
            shard_dir = f"{content_hash[:32]}-n{shard_insts}"
            final_dir = self.shards_root / shard_dir
            reused = final_dir.is_dir()
            if reused:
                # Identical content at identical sharding already stored
                # (content-addressed: the bytes are equivalent).
                shutil.rmtree(staging)
            else:
                os.replace(staging, final_dir)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise

        manifest = Manifest(
            name=name,
            content_hash=content_hash,
            instructions=writer.instructions,
            shard_insts=shard_insts,
            shard_dir=shard_dir,
            shards=writer.shards,
            branch_mix=mix.summary(writer.instructions),
            provenance={
                "source": source,
                "format": fmt,
                "ingested_at": time.strftime(
                    "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
                ),
            },
        )
        if reused:
            # Keep the shard digests of the files actually on disk (file
            # bytes can differ across numpy versions even for identical
            # content; the content hash is what must match).
            try:
                old = self.get(name)
                if old.shard_dir == shard_dir:
                    manifest.shards = old.shards
            except CorpusError:
                manifest.shards = [
                    ShardInfo(
                        file=s.file,
                        insts=s.insts,
                        sha256=hashlib.sha256(
                            (final_dir / s.file).read_bytes()
                        ).hexdigest(),
                    )
                    for s in manifest.shards
                ]
        text = json.dumps(manifest.to_json(), indent=2, sort_keys=True)
        atomic_write(
            self.manifest_path(name), lambda tmp: Path(tmp).write_text(text)
        )
        return IngestResult(
            manifest=manifest,
            instructions=writer.instructions,
            shards=len(manifest.shards),
            peak_buffered=writer.peak_buffered,
            seconds=time.perf_counter() - t0,
            reused_shards=reused,
        )

    # -- maintenance ---------------------------------------------------------

    def verify(self, names: Optional[Iterable[str]] = None) -> List[str]:
        """Integrity-check entries; returns a list of problem strings
        (empty when everything is intact).

        Checks, per entry: the manifest parses, every shard file exists
        with a matching SHA-256 and instruction count, the shard counts
        sum to the manifest's instruction count, and the recomputed
        content hash of the record stream matches ``content_hash``.
        """
        problems: List[str] = []
        for name in sorted(names) if names is not None else self.names():
            try:
                manifest = self.get(name)
            except CorpusError as exc:
                problems.append(str(exc))
                continue
            shard_dir = self.shard_dir_path(manifest)
            total = 0
            content = hashlib.sha256()
            for shard in manifest.shards:
                path = shard_dir / shard.file
                try:
                    data = path.read_bytes()
                except OSError:
                    problems.append(f"{name}: missing shard {path}")
                    continue
                if hashlib.sha256(data).hexdigest() != shard.sha256:
                    problems.append(f"{name}: corrupted shard {path}")
                    continue
                try:
                    arrays = np.load(str(path), allow_pickle=False)
                    cols = [
                        np.ascontiguousarray(arrays[c], dtype=np.int64)
                        for c in Trace._COLUMNS
                    ]
                except Exception as exc:
                    problems.append(f"{name}: unreadable shard {path}: {exc}")
                    continue
                count = len(cols[0])
                if count != shard.insts or any(len(c) != count for c in cols):
                    problems.append(
                        f"{name}: shard {path} has wrong instruction count"
                    )
                    continue
                content.update(
                    np.stack(cols, axis=1).astype("<i8").tobytes()
                )
                total += count
            if total != manifest.instructions:
                problems.append(
                    f"{name}: shard counts sum to {total}, manifest says "
                    f"{manifest.instructions}"
                )
            elif content.hexdigest() != manifest.content_hash:
                problems.append(
                    f"{name}: content hash mismatch (manifest "
                    f"{manifest.content_hash[:16]}..., recomputed "
                    f"{content.hexdigest()[:16]}...)"
                )
        return problems

    def gc(self, dry_run: bool = False) -> List[str]:
        """Remove shard directories no manifest references (and stale
        ingest staging directories). Returns the removed directory names;
        live shard directories are never touched."""
        if not self.shards_root.is_dir():
            return []
        live = set()
        for name in self.names():
            try:
                live.add(self.get(name).shard_dir)
            except CorpusError:
                continue  # unreadable manifest: keep its shards for triage
        removed = []
        for entry in sorted(self.shards_root.iterdir()):
            if not entry.is_dir():
                continue
            stale_staging = entry.name.startswith(".ingest-") and (
                time.time() - entry.stat().st_mtime > 3600
            )
            orphaned = not entry.name.startswith(".") and entry.name not in live
            if orphaned or stale_staging:
                if not dry_run:
                    shutil.rmtree(entry, ignore_errors=True)
                removed.append(entry.name)
        return removed

    def remove(self, name: str) -> None:
        """Drop entry *name* (its shards become garbage for :meth:`gc`)."""
        manifest = self.get(name)  # raises when unknown
        self.manifest_path(manifest.name).unlink()

    def clear(self) -> None:
        """Remove the whole corpus store, all schema versions included."""
        shutil.rmtree(self.root, ignore_errors=True)
