"""Analysis helpers: whisker statistics and report rendering."""

from repro.analysis.export import (
    METRIC_FIELDS,
    result_row,
    results_to_rows,
    write_csv,
    write_json,
)
from repro.analysis.report import ascii_bar, format_table, series_table, whisker_table
from repro.common.stats import BoxStats, geomean

__all__ = [
    "BoxStats",
    "METRIC_FIELDS",
    "result_row",
    "results_to_rows",
    "write_csv",
    "write_json",
    "ascii_bar",
    "format_table",
    "geomean",
    "series_table",
    "whisker_table",
]
