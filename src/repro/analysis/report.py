"""Report rendering for the benchmark harness.

The paper presents results as whisker plots over the trace suite; the
benches print the same content as aligned text tables (one row per
configuration) plus simple ASCII bars so the shape is visible in logs.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned text table."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if len(cell) > widths[i]:
                widths[i] = len(cell)
    lines = []
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def ascii_bar(value: float, lo: float, hi: float, width: int = 30) -> str:
    """A bar proportional to value's position in [lo, hi]."""
    if hi <= lo:
        return ""
    frac = (value - lo) / (hi - lo)
    frac = min(1.0, max(0.0, frac))
    n = int(round(frac * width))
    return "#" * n


def whisker_table(labelled_boxes: Sequence, title: str) -> str:
    """One row per (label, BoxStats): the paper's whisker-plot content.

    ``labelled_boxes`` is a sequence of ``(label, BoxStats)`` pairs.
    """
    lo = min(b.minimum for _, b in labelled_boxes)
    hi = max(b.maximum for _, b in labelled_boxes)
    rows = []
    for label, box in labelled_boxes:
        rows.append(
            (
                label,
                f"{box.geomean:.4f}",
                f"{box.minimum:.3f}",
                f"{box.q1:.3f}",
                f"{box.median:.3f}",
                f"{box.q3:.3f}",
                f"{box.maximum:.3f}",
                ascii_bar(box.geomean, lo, hi),
            )
        )
    table = format_table(
        ("config", "gmean", "min", "q1", "median", "q3", "max", "gmean bar"),
        rows,
    )
    return f"== {title} ==\n{table}"


def series_table(title: str, x_label: str, xs: Sequence, series: dict) -> str:
    """Render named y-series against a shared x axis (Fig. 11 style)."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        row = [x] + [f"{series[name][i]:.4f}" for name in series]
        rows.append(row)
    return f"== {title} ==\n{format_table(headers, rows)}"


def timeline_summary(obs, max_rows: int = 24) -> str:
    """Terminal timeline of a :class:`repro.obs.Observation`.

    Interval rows are coalesced into at most *max_rows* buckets by
    re-summing the raw counter deltas, so derived rates stay exact for
    each printed window regardless of the on-disk interval size.
    """
    total_ipc = obs.instructions / obs.cycles if obs.cycles else 0.0
    out = [
        f"== timeline: {obs.name} ==",
        f"{obs.instructions} instructions in {obs.cycles} cycles "
        f"(IPC {total_ipc:.3f})",
    ]
    cols = obs.intervals or {}
    ends = cols.get("cycle_end")
    n = len(ends) if ends is not None else 0
    if n:
        group = max(1, -(-n // max_rows))  # ceil division
        peak_ipc = 0.0
        buckets = []
        for start in range(0, n, group):
            stop = min(start + group, n)
            c0 = float(cols["cycle_start"][start])
            c1 = float(ends[stop - 1])
            insts = float(cols["instructions"][start:stop].sum())
            ipc = insts / max(1.0, c1 - c0)
            occ = float(cols["ftq_occupancy"][start:stop].mean())
            mis = float(cols["mispredicts"][start:stop].sum()) if "mispredicts" in cols else 0.0
            mpki = 1000.0 * mis / insts if insts else 0.0
            buckets.append((c0, c1, insts, ipc, occ, mpki))
            peak_ipc = max(peak_ipc, ipc)
        rows = [
            (
                f"{int(c0)}-{int(c1)}",
                f"{int(insts)}",
                f"{ipc:.3f}",
                f"{occ:.1f}",
                f"{mpki:.1f}",
                ascii_bar(ipc, 0.0, peak_ipc, 24),
            )
            for c0, c1, insts, ipc, occ, mpki in buckets
        ]
        out.append(
            format_table(
                ("cycles", "insts", "ipc", "ftq", "mpki", "ipc bar"), rows
            )
        )
    if obs.event_counts:
        peak = max(obs.event_counts.values())
        ev_rows = [
            (name, count, ascii_bar(count, 0, peak, 20))
            for name, count in sorted(
                obs.event_counts.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]
        out.append(format_table(("event", "count", ""), ev_rows))
    if obs.dropped or obs.sampled_out:
        out.append(
            f"(ring dropped {obs.dropped} events; "
            f"sampling skipped {obs.sampled_out})"
        )
    return "\n".join(out)
