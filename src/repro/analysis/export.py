"""Result export: flatten SimResults to rows and write CSV/JSON.

Lets downstream users post-process sweeps with pandas/R instead of
parsing the text figures.
"""

from __future__ import annotations

import csv
import json
from typing import Dict, Iterable, List, Sequence, Tuple

#: Derived metrics exported for every result.
METRIC_FIELDS = (
    "ipc",
    "branch_mpki",
    "misfetch_pki",
    "fetch_pcs_per_access",
    "l1_btb_hit_rate",
    "l2_btb_hit_rate",
)


def result_row(config_label: str, result) -> Dict[str, object]:
    """Flatten one (config, SimResult) pair into a plain dict."""
    row: Dict[str, object] = {
        "config": config_label,
        "workload": result.name,
        "instructions": result.instructions,
        "cycles": result.cycles,
    }
    for field in METRIC_FIELDS:
        row[field] = getattr(result, field)
    for key, value in sorted(result.structure.items()):
        row[key] = value
    return row


def results_to_rows(
    labelled_results: Iterable[Tuple[str, Sequence]],
) -> List[Dict[str, object]]:
    """``[(label, [SimResult, ...]), ...]`` -> list of flat row dicts."""
    rows = []
    for label, results in labelled_results:
        for result in results:
            rows.append(result_row(label, result))
    return rows


def write_csv(path: str, rows: Sequence[Dict[str, object]]) -> None:
    """Write rows to *path*; the header is the union of all keys."""
    if not rows:
        raise ValueError("no rows to write")
    fields: List[str] = []
    for row in rows:
        for key in row:
            if key not in fields:
                fields.append(key)
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fields, restval="")
        writer.writeheader()
        writer.writerows(rows)


def write_json(path: str, rows: Sequence[Dict[str, object]]) -> None:
    """Write rows as a JSON array."""
    with open(path, "w") as handle:
        json.dump(list(rows), handle, indent=2, sort_keys=True)
