"""Command-line interface: ``repro-sim``.

Subcommands::

    repro-sim characterize [workloads...]      workload statistics table
    repro-sim run CONFIG WORKLOAD              one simulation, full metrics
    repro-sim trace WORKLOAD [CONFIG]          instrumented run (repro.obs):
                                               event trace, interval metrics,
                                               Chrome/Perfetto + CSV export
    repro-sim compare CONFIG [CONFIG...]       whisker table vs ideal I-BTB 16
    repro-sim sweep [CONFIG...] --jobs N       parallel, disk-cached sweep
    repro-sim sweep ... --dist HOST:PORT       drain the sweep onto a
                                               remote worker fleet
                                               (docs/distributed.md)
    repro-sim worker --connect tcp://H:P       dist sweep worker
    repro-sim serve --port N --jobs N          async simulation daemon
                                               (coalescing, admission
                                               control, NDJSON job events
                                               — docs/service.md)
    repro-sim cache stats|prune                persistent-cache maintenance
    repro-sim corpus ingest|ls|info|verify|gc  manage the trace corpus store
    repro-sim workloads                        synthetic + corpus workload names
    repro-sim list                             workloads and config syntax

Workload arguments accept synthetic suite names (``web_frontend``, ...),
trace files (``.csv`` / ``.csv.gz`` / ``.csv.xz``, where a file makes
sense), and ingested corpus entries as ``corpus:<name>[@<slice>]``
(e.g. ``corpus:srv01@skip=1000000,measure=5000000`` — docs/corpus.md).

Configurations are compact spec strings::

    ibtb:16            16-banked Instruction BTB
    ibtb:16:skp        ... the Fig.-4 "Skp" idealization
    rbtb:3             Region BTB, 3 branch slots
    rbtb:2:2l1         ... even/odd interleaved L1
    rbtb:4:128b        ... 128-byte regions
    bbtb:1:split       Block BTB, 1 slot, entry splitting
    bbtb:2:32          Block BTB, 2 slots, 32-instruction blocks
    mbbtb:2:allbr      MultiBlock BTB, 2 slots, AllBr pull policy
    mbbtb:3:calldir:64 ... 64-instruction blocks
    hetero:1:2         Heterogeneous: B-BTB(1) L1 over R-BTB(2) L2

A trailing ``@ideal`` switches to the huge single-level BTB (Fig. 4).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List

from repro.analysis.report import format_table, whisker_table
from repro.core.config import (
    IDEAL_IBTB16,
    MachineConfig,
    bbtb,
    hetero_btb,
    ibtb,
    ibtb_skp,
    mbbtb,
    rbtb,
)
from repro.core.config import build_simulator
from repro.core.passes.kernel import KernelConfigError, kernel_mode
from repro.core.exec import (
    RetryPolicy,
    SweepError,
    SweepJournal,
    SweepPoint,
    configure_disk_cache,
    env_cache_root,
    point_key,
    resolve_jobs,
    sweep_key,
)
from repro.core.runner import (
    clear_cache,
    compare_to_baseline,
    run_one,
    sweep_compare,
    sweep_results_payload,
)
from repro.corpus import (
    DEFAULT_SHARD_INSTS,
    CorpusError,
    CorpusStore,
    configure_corpus,
    is_corpus_workload,
    load_corpus_trace,
)
from repro.trace.external import TraceFormatError, load_trace_csv
from repro.trace.workloads import SERVER_SUITE, get_trace

#: Suffixes `run`/`trace` treat as external CSV trace files.
TRACE_FILE_SUFFIXES = (".csv", ".csv.gz", ".csv.xz")


class ConfigSpecError(ValueError):
    """Raised for malformed configuration spec strings."""


def parse_config(spec: str) -> MachineConfig:
    """Parse a compact config spec string into a :class:`MachineConfig`."""
    spec = spec.strip().lower()
    ideal = spec.endswith("@ideal")
    if ideal:
        spec = spec[: -len("@ideal")]
    parts = [p for p in spec.split(":") if p]
    if not parts:
        raise ConfigSpecError("empty config spec")
    kind, args = parts[0], parts[1:]
    kw = {"ideal_btb": True} if ideal else {}
    try:
        if kind == "ibtb":
            width = int(args[0]) if args else 16
            if len(args) > 1 and args[1] == "skp":
                return ibtb_skp(**kw)
            return ibtb(width, **kw)
        if kind == "rbtb":
            slots = int(args[0]) if args else 2
            region = 64
            interleaved = False
            for extra in args[1:]:
                if extra == "2l1":
                    interleaved = True
                elif extra.endswith("b"):
                    region = int(extra[:-1])
                else:
                    raise ConfigSpecError(f"unknown rbtb option {extra!r}")
            return rbtb(slots, region_bytes=region, interleaved=interleaved, **kw)
        if kind == "bbtb":
            slots = int(args[0]) if args else 1
            splitting = False
            block = 16
            for extra in args[1:]:
                if extra == "split":
                    splitting = True
                else:
                    block = int(extra)
            return bbtb(slots, splitting=splitting, block_insts=block, **kw)
        if kind == "mbbtb":
            slots = int(args[0]) if args else 2
            policy = args[1] if len(args) > 1 else "allbr"
            block = int(args[2]) if len(args) > 2 else 16
            return mbbtb(slots, policy, block_insts=block, **kw)
        if kind == "hetero":
            l1s = int(args[0]) if args else 1
            l2s = int(args[1]) if len(args) > 1 else 2
            return hetero_btb(l1s, l2s, **kw)
    except (ValueError, KeyError, IndexError) as exc:
        if isinstance(exc, ConfigSpecError):
            raise
        raise ConfigSpecError(f"malformed config spec {spec!r}: {exc}") from exc
    raise ConfigSpecError(f"unknown organization {kind!r} in {spec!r}")


def _cmd_characterize(args) -> int:
    names = args.workloads or SERVER_SUITE
    rows = []
    for name in names:
        tr = get_trace(name, args.length)
        st = tr.stats()
        n, br = st.get("instructions"), st.get("branches")
        rows.append(
            (
                name,
                f"{tr.mean_basic_block_size():.2f}",
                f"{br / n * 100:.1f}%",
                f"{st.get('taken_branches') / br * 100:.1f}%",
                f"{st.get('code_footprint_bytes') / 1024:.1f}KB",
            )
        )
    print(format_table(("workload", "dynBB", "br%", "taken%", "footprint"), rows))
    return 0


def _cmd_run(args) -> int:
    config = parse_config(args.config)
    if args.workload.endswith(TRACE_FILE_SUFFIXES) or is_corpus_workload(
        args.workload
    ):
        # External trace file (repro.trace.external) or ingested corpus
        # entry (repro.corpus). Both take the same default warmup, so a
        # trace simulates bit-identically whichever way it is fed in.
        if is_corpus_workload(args.workload):
            trace = load_corpus_trace(args.workload, args.length)
        else:
            trace = load_trace_csv(args.workload)
        sim = build_simulator(config, trace)
        result = sim.run(warmup=min(len(trace) // 4, args.length // 4))
    else:
        result = run_one(config, args.workload, length=args.length, warmup=args.length // 4)
    print(f"{config.label} on {args.workload}:")
    print(f"  IPC                {result.ipc:8.3f}")
    print(f"  branch MPKI        {result.branch_mpki:8.2f}")
    print(f"  misfetch PKI       {result.misfetch_pki:8.2f}")
    print(f"  L1 BTB hit rate    {result.l1_btb_hit_rate * 100:7.1f}%")
    print(f"  L1+L2 BTB hit rate {result.l2_btb_hit_rate * 100:7.1f}%")
    print(f"  fetch PCs/access   {result.fetch_pcs_per_access:8.2f}")
    return 0


def _cmd_trace(args) -> int:
    """Instrumented run: event trace + interval metrics + exports."""
    from repro.analysis.report import timeline_summary
    from repro.obs import Observer
    from repro.obs.export import (
        write_chrome_trace,
        write_intervals_csv,
        write_observation_json,
    )

    config = parse_config(args.config)
    observer = Observer(
        events=args.events,
        interval=args.intervals,
        sample=args.sample,
        capacity=args.capacity,
        meta={"config": config.label, "workload": args.workload},
    )
    if args.workload.endswith(TRACE_FILE_SUFFIXES):
        trace = load_trace_csv(args.workload)
    elif is_corpus_workload(args.workload):
        trace = load_corpus_trace(args.workload, args.length)
    else:
        trace = get_trace(args.workload, args.length)
    sim = build_simulator(config, trace, probe=observer)
    result = sim.run(warmup=args.warmup)
    obs = observer.observation()
    print(timeline_summary(obs))
    print(
        f"(SimResult: IPC {result.ipc:.3f}, "
        f"branch MPKI {result.branch_mpki:.2f}, "
        f"misfetch PKI {result.misfetch_pki:.2f}, "
        f"kernel {sim.kernel_engine()})"
    )
    if args.chrome:
        write_chrome_trace(obs, args.chrome)
        print(f"wrote {args.chrome} (load in chrome://tracing or Perfetto)")
    if args.csv:
        write_intervals_csv(obs, args.csv)
        print(f"wrote {args.csv}")
    if args.json:
        write_observation_json(obs, args.json)
        print(f"wrote {args.json}")
    return 0


def _cmd_compare(args) -> int:
    configs = [parse_config(s) for s in args.configs]
    names = args.workloads or SERVER_SUITE
    compared = compare_to_baseline(
        configs, IDEAL_IBTB16, names, length=args.length, warmup=args.length // 4
    )
    boxes = [(cc.config.label, cc.box) for cc in compared]
    print(whisker_table(boxes, "IPC relative to ideal I-BTB 16"))
    return 0


#: Default sweep configurations: one representative per organization.
SWEEP_DEFAULT_SPECS = ["ibtb:16", "rbtb:3", "bbtb:1:split", "mbbtb:2:allbr"]


#: Resilience counters surfaced per bench phase and in the summary line.
_RESILIENCE_COLUMNS = (
    "retries",
    "failed",
    "timeouts",
    "worker_crashes",
    "resumed",
    "deferred",
)


#: Kept as an alias — the payload builder moved to the runner so the
#: service daemon's sweep jobs emit byte-identical documents.
_sweep_results_payload = sweep_results_payload


def _cmd_sweep(args) -> int:
    """Parallel, disk-cached, fault-tolerant figure sweep."""
    import json
    import time

    engine = kernel_mode()  # validate REPRO_KERNEL before any work
    args.jobs = resolve_jobs(args.jobs)  # 0 = auto-detect CPU count
    if args.dist and args.bench_out:
        print(
            "error: --bench-out times the local backends; use "
            "scripts/dist_bench.py for fleet scaling", file=sys.stderr,
        )
        return 2
    configs = [parse_config(s) for s in (args.configs or SWEEP_DEFAULT_SPECS)]
    names = args.workloads or SERVER_SUITE
    warmup = args.warmup if args.warmup is not None else args.length // 4
    cache = None
    if not args.no_disk_cache:
        cache = configure_disk_cache(True, args.cache_dir or env_cache_root())
    elif args.bench_out:
        print("error: --bench-out needs the disk cache", file=sys.stderr)
        return 2
    elif args.resume:
        print("error: --resume needs the disk cache", file=sys.stderr)
        return 2

    policy = RetryPolicy(max_retries=args.max_retries, timeout=args.timeout)

    # Checkpoint journal, keyed by the sweep's point grid so --resume
    # finds the journal of the interrupted run. Skipped by the bench
    # harness, whose phases purge the caches the journal points into.
    journal = None
    if cache is not None and not args.bench_out:
        grid = [
            point_key(SweepPoint(config, name, args.length, warmup, 7))
            for config in [IDEAL_IBTB16, *configs]
            for name in names
        ]
        journal = SweepJournal(
            cache.version_dir / "journal" / f"{sweep_key(grid)}.jsonl"
        )
        if not args.resume:
            journal.discard()

    if args.dist:
        # Start (and announce) the coordinator before the sweep blocks
        # on it, so workers know where to connect even with --dist :0.
        from repro.dist import get_coordinator

        coordinator = get_coordinator(args.dist)
        print(
            f"dist: coordinator listening on tcp://{coordinator.address} "
            f"({coordinator.workers_live()} worker(s) connected)",
            flush=True,
        )

    def sweep(jobs: int):
        return sweep_compare(
            configs, IDEAL_IBTB16, names, length=args.length, warmup=warmup,
            jobs=jobs, policy=policy, journal=journal, resume=args.resume,
            strict=args.strict, batch=args.batch, recycle=args.recycle,
            dispatch=args.dist,
        )

    def timed(jobs: int, purge_disk: bool):
        """One timed sweep phase from an empty in-process memo."""
        clear_cache(disk=purge_disk)
        if purge_disk:
            # Fully cold: re-build programs and re-synthesize traces too,
            # so serial and parallel phases pay identical costs.
            from repro.trace.workloads import get_program, get_trace

            get_program.cache_clear()
            get_trace.cache_clear()
        before = cache.snapshot() if cache is not None else {}
        t0 = time.perf_counter()
        compared, rep, _ = sweep(jobs)
        seconds = time.perf_counter() - t0
        after = cache.snapshot() if cache is not None else {}
        delta = {k: after[k] - before.get(k, 0) for k in after}
        resilience = {k: rep.counters.get(k, 0) for k in _RESILIENCE_COLUMNS}
        return compared, {"seconds": round(seconds, 4), **delta, **resilience}

    report = None
    skipped = []
    try:
        if args.bench_out:
            _, serial = timed(jobs=1, purge_disk=True)
            _, par = timed(jobs=args.jobs, purge_disk=True)
            compared, warm = timed(jobs=1, purge_disk=False)
            bench = {
                "schema": 2,
                "configs": [c.label for c in configs],
                "baseline": IDEAL_IBTB16.label,
                "workloads": list(names),
                "length": args.length,
                "warmup": warmup,
                "jobs": args.jobs,
                "max_retries": args.max_retries,
                "timeout": args.timeout,
                "kernel_engine": engine,
                "phases": {
                    "serial_cold": serial,
                    "parallel_cold": par,
                    "warm_cache": warm,
                },
                "speedup_parallel_vs_serial": round(
                    serial["seconds"] / max(par["seconds"], 1e-9), 2
                ),
                "speedup_warm_vs_cold": round(
                    serial["seconds"] / max(warm["seconds"], 1e-9), 2
                ),
            }
            with open(args.bench_out, "w") as fh:
                json.dump(bench, fh, indent=2)
                fh.write("\n")
            print(f"wrote {args.bench_out}")
            print(
                f"serial {serial['seconds']:.2f}s | parallel(x{args.jobs}) "
                f"{par['seconds']:.2f}s | warm {warm['seconds']:.2f}s "
                f"({bench['speedup_warm_vs_cold']:.1f}x) | kernel {engine}"
            )
        else:
            compared, report, skipped = sweep(args.jobs)
    finally:
        if journal is not None:
            journal.close()

    if report is not None and report.failures:
        for outcome in report.failures:
            err = outcome.error
            print(
                f"FAILED {outcome.point.config.label} on "
                f"{outcome.point.workload}: {err.kind} after "
                f"{err.attempts} attempts: {err.message}",
                file=sys.stderr,
            )
        if skipped:
            print(
                f"dropped {len(skipped)} workload(s) from the comparison: "
                + ", ".join(skipped),
                file=sys.stderr,
            )
    if args.chrome and report is not None:
        from repro.obs.export import write_sweep_chrome_trace

        write_sweep_chrome_trace(report, args.chrome)
        print(f"wrote {args.chrome} (load in chrome://tracing or Perfetto)")
    if args.out:
        payload = _sweep_results_payload(compared, IDEAL_IBTB16.label)
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    boxes = [(cc.config.label, cc.box) for cc in compared]
    print(whisker_table(boxes, "Sweep: IPC relative to ideal I-BTB 16"))
    if report is not None and any(
        report.counters.get(k, 0) for k in _RESILIENCE_COLUMNS
    ):
        print(
            "resilience: "
            + ", ".join(
                f"{report.counters.get(k, 0)} {k}" for k in _RESILIENCE_COLUMNS
            )
        )
    if cache is not None:
        c = cache.snapshot()
        print(
            f"disk cache: {c['result_hits']} result hits / "
            f"{c['result_misses']} misses, {c['trace_hits']} trace hits, "
            f"{c.get('plan_hits', 0)} plan hits ({cache.root})"
        )
    print(f"kernel engine: {engine}")
    return 1 if (report is not None and report.failures) else 0


def _cmd_worker(args) -> int:
    """Dist worker supervisor (``repro-sim worker``)."""
    from repro.dist.worker import run_worker

    kernel_mode()  # validate REPRO_KERNEL before leasing work
    return run_worker(
        args.connect,
        jobs=args.jobs,
        lease_max=args.lease,
        worker_name=args.name,
        cache_root=args.cache_dir or env_cache_root(),
        cache_enabled=not args.no_disk_cache,
        corpus_root=args.corpus_dir,
        retry_window=args.retry_window,
    )


def _cmd_serve(args) -> int:
    """Run the sweep-as-a-service daemon (repro.service)."""
    import asyncio

    from repro.service import Service, ServiceConfig

    kernel_mode()  # validate REPRO_KERNEL before accepting traffic
    cache_root = args.cache_dir or env_cache_root()
    if not args.no_disk_cache:
        # The daemon is long-lived: default to the sharded layout so the
        # store scales past what a one-shot sweep ever writes.
        configure_disk_cache(True, cache_root, shard=args.shard)
    state_dir = args.state_dir
    if state_dir is None and not args.no_disk_cache:
        # Durable by default when we already own a persistent directory:
        # the job journal lives beside the result cache it references.
        state_dir = str(Path(cache_root) / "service")
    elif state_dir is not None and state_dir.lower() == "none":
        state_dir = None
    service = Service(
        ServiceConfig(
            host=args.host,
            port=args.port,
            jobs=args.jobs if args.jobs is not None else resolve_jobs(None),
            queue_limit=args.queue_limit,
            rate=args.rate,
            burst=args.burst,
            max_retries=args.max_retries,
            timeout=args.timeout,
            batch=args.batch,
            recycle=args.recycle,
            cache_max_bytes=int(args.cache_max_mb * (1 << 20)),
            drain_timeout=args.drain_timeout,
            state_dir=state_dir,
            job_ttl=args.job_ttl,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown=args.breaker_cooldown,
            dist_listen=args.dist_listen,
        )
    )
    return asyncio.run(service.run())


def _cache_for(args):
    from repro.core.exec import DiskCache

    return DiskCache(args.cache_dir or env_cache_root())


def _cmd_cache_stats(args) -> int:
    """Per-tier entry counts and sizes (sweeps stale write locks too)."""
    import json

    from repro.core.exec import TIERS

    cache = _cache_for(args)
    stats = cache.tier_stats()
    swept = cache.counters.get("locks_swept", 0)
    if args.json:
        print(
            json.dumps(
                {"root": str(cache.root), "tiers": stats, "locks_swept": swept},
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    rows = [
        (tier, f"{stats[tier]['entries']:,}", _fmt_bytes(stats[tier]["bytes"]))
        for tier in [*TIERS, "total"]
    ]
    print(f"cache root: {cache.root}")
    print(format_table(("tier", "entries", "size"), rows))
    if swept:
        print(f"(swept {swept} stale lock/temp file(s))")
    return 0


def _cmd_cache_prune(args) -> int:
    """LRU-evict entries until the store fits ``--max-mb``."""
    cache = _cache_for(args)
    summary = cache.prune(
        int(args.max_mb * (1 << 20)), tiers=args.tiers or None
    )
    print(
        f"evicted {summary['evicted']} entr(y/ies) "
        f"({_fmt_bytes(summary['evicted_bytes'])}); "
        f"kept {summary['kept']} ({_fmt_bytes(summary['kept_bytes'])}) "
        f"under {args.max_mb} MB at {cache.root}"
    )
    return 0


def _fmt_bytes(n: int) -> str:
    if n >= 1 << 20:
        return f"{n / (1 << 20):.1f}MB"
    if n >= 1 << 10:
        return f"{n / (1 << 10):.1f}KB"
    return f"{n}B"


def _cmd_export(args) -> int:
    import os

    from repro.trace.external import save_trace_csv

    os.makedirs(args.outdir, exist_ok=True)
    names = args.workloads or SERVER_SUITE
    for name in names:
        trace = get_trace(name, args.length)
        path = os.path.join(args.outdir, f"{name}.csv")
        save_trace_csv(trace, path)
        print(f"wrote {path} ({len(trace)} instructions)")
    return 0


def _cmd_workloads(args) -> int:
    """List every workload name a command will accept: the synthetic
    suite plus ingested corpus entries (``corpus:<name>``)."""
    store = _corpus_store(args)
    rows = []
    for name in SERVER_SUITE:
        rows.append((name, "synthetic", "(per --length)"))
    for manifest in store.manifests():
        rows.append(
            (
                f"corpus:{manifest.name}",
                "corpus",
                f"{manifest.instructions:,}",
            )
        )
    print(format_table(("workload", "kind", "instructions"), rows))
    if not store.names():
        print(
            "\n(no corpus entries; ingest traces with "
            "`repro-sim corpus ingest FILE...`)"
        )
    return 0


def _corpus_store(args) -> CorpusStore:
    """Store named by ``--corpus-dir`` (exported so any simulation this
    process spawns resolves ``corpus:`` names against the same root)."""
    root = getattr(args, "corpus_dir", None)
    return configure_corpus(root) if root else CorpusStore()


def _cmd_corpus_ingest(args) -> int:
    store = _corpus_store(args)
    if args.name and len(args.sources) > 1:
        print("error: --name requires a single source file", file=sys.stderr)
        return 2
    for source in args.sources:
        res = store.ingest(
            source,
            name=args.name,
            fmt=args.format,
            shard_insts=args.shard_insts,
        )
        m = res.manifest
        reused = " (shards reused)" if res.reused_shards else ""
        print(
            f"ingested corpus:{m.name}: {res.instructions:,} instructions, "
            f"{res.shards} shard(s), content {m.content_hash[:16]}... "
            f"in {res.seconds:.2f}s{reused}"
        )
    return 0


def _cmd_corpus_ls(args) -> int:
    store = _corpus_store(args)
    manifests = store.manifests()
    if not manifests:
        print(f"corpus at {store.root} is empty")
        return 0
    rows = [
        (
            m.name,
            f"{m.instructions:,}",
            str(len(m.shards)),
            m.content_hash[:16],
            str(m.provenance.get("format", "?")),
        )
        for m in manifests
    ]
    print(format_table(("name", "instructions", "shards", "content", "format"), rows))
    return 0


def _cmd_corpus_info(args) -> int:
    import json

    store = _corpus_store(args)
    manifest = store.get(args.name)
    print(json.dumps(manifest.to_json(), indent=2, sort_keys=True))
    return 0


def _cmd_corpus_verify(args) -> int:
    store = _corpus_store(args)
    names = args.names or None
    problems = store.verify(names)
    checked = sorted(names) if names else store.names()
    if problems:
        for problem in problems:
            print(f"PROBLEM: {problem}", file=sys.stderr)
        print(
            f"{len(problems)} problem(s) in {len(checked)} entr(y/ies)",
            file=sys.stderr,
        )
        return 1
    print(f"{len(checked)} entr(y/ies) verified, no problems")
    return 0


def _cmd_corpus_gc(args) -> int:
    from repro.core.exec import DiskCache

    store = _corpus_store(args)
    removed = store.gc(dry_run=args.dry_run)
    verb = "would remove" if args.dry_run else "removed"
    if removed:
        for name in removed:
            print(f"{verb} {store.shards_root / name}")
    # Prune batch plans whose backing corpus entry is gone: the plans
    # tier stores each entry's source content hash in its ``__meta__``
    # ("synth" plans never reference the corpus and are kept).
    live = {store.get(name).content_hash for name in store.names()}
    cache = DiskCache(args.cache_dir or env_cache_root())
    stale = [
        path
        for path, meta in cache.iter_plans()
        if meta.get("source", "synth") != "synth"
        and meta.get("source") not in live
    ]
    for path in stale:
        print(f"{verb} {path}")
        if not args.dry_run:
            path.unlink(missing_ok=True)
    if not removed and not stale:
        print("nothing to collect")
    return 0


def _cmd_list(_args) -> int:
    print("workloads:")
    for name in SERVER_SUITE:
        print(f"  {name}")
    print("\nconfig spec syntax (see `repro-sim --help`):")
    print("  ibtb:16 | ibtb:16:skp | rbtb:3[:2l1][:128b] | bbtb:1:split[:32]")
    print("  mbbtb:2:allbr[:64] | hetero:1:2 | any spec + '@ideal'")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Trace-driven BTB-organization simulator (MICRO 2023 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("characterize", help="workload statistics")
    p.add_argument("workloads", nargs="*", help="workload names (default: all)")
    p.add_argument("--length", type=int, default=160_000)
    p.set_defaults(func=_cmd_characterize)

    p = sub.add_parser("run", help="simulate one config on one workload")
    p.add_argument("config", help="config spec, e.g. mbbtb:2:allbr")
    p.add_argument("workload", help="workload name, or a .csv trace file")
    p.add_argument("--length", type=int, default=160_000)
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser(
        "trace", help="instrumented run with event/interval export (repro.obs)"
    )
    p.add_argument("workload", help="workload name, or a .csv trace file")
    p.add_argument(
        "config", nargs="?", default="mbbtb:2:allbr",
        help="config spec (default: mbbtb:2:allbr)",
    )
    p.add_argument("--length", type=int, default=50_000)
    p.add_argument(
        "--warmup", type=int, default=0,
        help="instructions before measurement (default 0: intervals "
        "reconcile exactly with the SimResult totals)",
    )
    p.add_argument(
        "--events", action=argparse.BooleanOptionalAction, default=True,
        help="capture typed pipeline events (default: on)",
    )
    p.add_argument(
        "--intervals", type=int, default=1000, metavar="N",
        help="metrics snapshot every N cycles; 0 disables (default 1000)",
    )
    p.add_argument(
        "--sample", type=int, default=1, metavar="K",
        help="buffer every K-th event per kind (counts stay exact)",
    )
    p.add_argument(
        "--capacity", type=int, default=65536,
        help="event ring-buffer capacity (default 65536)",
    )
    p.add_argument("--chrome", default=None, metavar="PATH",
                   help="write Chrome trace_event JSON (Perfetto-loadable)")
    p.add_argument("--csv", default=None, metavar="PATH",
                   help="write interval metrics CSV")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the full observation dump as JSON")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("compare", help="compare configs vs ideal I-BTB 16")
    p.add_argument("configs", nargs="+", help="config specs")
    p.add_argument("--workloads", nargs="*", default=None)
    p.add_argument("--length", type=int, default=160_000)
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser(
        "sweep", help="parallel, disk-cached sweep vs ideal I-BTB 16"
    )
    p.add_argument("configs", nargs="*", help=f"config specs (default: {' '.join(SWEEP_DEFAULT_SPECS)})")
    p.add_argument("--workloads", nargs="*", default=None)
    p.add_argument("--length", type=int, default=160_000)
    p.add_argument("--warmup", type=int, default=None, help="default: length/4")
    p.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (0 = auto-detect the CPU count; "
        "default: $REPRO_JOBS, else 1)",
    )
    p.add_argument(
        "--batch", type=int, default=None, metavar="N",
        help="points per worker dispatch (default: load-balanced); "
        "larger batches amortize shared batch plans when "
        "REPRO_KERNEL=batched",
    )
    p.add_argument(
        "--recycle", type=int, default=0, metavar="N",
        help="retire each worker process after N dispatched points and "
        "respawn on demand (default 0: never)",
    )
    p.add_argument(
        "--no-disk-cache", action="store_true",
        help="skip the persistent cache (~/.cache/repro-btb)",
    )
    p.add_argument("--cache-dir", default=None, help="persistent cache root")
    p.add_argument(
        "--bench-out", default=None, metavar="PATH",
        help="run the serial/parallel/warm timing harness and write JSON",
    )
    p.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="re-dispatch a failing point up to N times with exponential "
        "backoff before recording it as failed (default 2)",
    )
    p.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="soft per-point wall-clock budget; a hung worker is killed "
        "and its point retried (default: no deadline)",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="skip points checkpointed in the sweep's journal by an "
        "earlier (e.g. SIGKILLed) run; needs the disk cache",
    )
    p.add_argument(
        "--strict", action=argparse.BooleanOptionalAction, default=True,
        help="with --no-strict, a sweep with persistent failures prints "
        "them, drops the affected workloads and exits 1 instead of "
        "aborting",
    )
    p.add_argument(
        "--out", default=None, metavar="PATH",
        help="write per-point results as deterministic JSON (the chaos "
        "smoke compares this across faulty and clean runs)",
    )
    p.add_argument(
        "--chrome", default=None, metavar="PATH",
        help="write the sweep scheduler timeline (chunks, retries, "
        "crashes) as Chrome trace_event JSON",
    )
    p.add_argument(
        "--dist", default=None, metavar="HOST:PORT",
        help="drain the sweep onto remote workers instead of local "
        "processes: host a work-stealing coordinator at this address "
        "and wait for 'repro-sim worker' processes to connect "
        "(docs/distributed.md); --jobs is ignored",
    )
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "worker", help="dist sweep worker: connect to a coordinator, "
        "lease points, stream results back (docs/distributed.md)"
    )
    p.add_argument(
        "--connect", required=True, metavar="URL",
        help="coordinator address (tcp://host:port)",
    )
    p.add_argument(
        "--jobs", type=int, default=None,
        help="session processes (default: $REPRO_JOBS on *this* host, "
        "else this host's CPU count — the coordinator's job count is "
        "never consulted)",
    )
    p.add_argument(
        "--lease", type=int, default=0, metavar="N",
        help="max points per lease (default 0: coordinator decides)",
    )
    p.add_argument(
        "--name", default=None,
        help="worker name for fleet logs (default: <hostname>-<pid>)",
    )
    p.add_argument(
        "--no-disk-cache", action="store_true",
        help="skip the persistent cache (~/.cache/repro-btb)",
    )
    p.add_argument("--cache-dir", default=None, help="persistent cache root")
    p.add_argument(
        "--corpus-dir", default=None, metavar="DIR",
        help="local corpus store for fetched trace shards "
        "(default: $REPRO_CORPUS_DIR, else the standard corpus root)",
    )
    p.add_argument(
        "--retry-window", type=float, default=30.0, metavar="SECONDS",
        help="keep retrying a lost coordinator connection this long "
        "before exiting cleanly (default 30)",
    )
    p.set_defaults(func=_cmd_worker)

    p = sub.add_parser(
        "serve", help="async simulation daemon (coalescing + admission "
        "control over the warm worker pool; docs/service.md)"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=0,
        help="listen port (default 0: pick an ephemeral port and print it)",
    )
    p.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (0 = auto-detect the CPU count; "
        "default: $REPRO_JOBS, else 1)",
    )
    p.add_argument(
        "--queue-limit", type=int, default=16, metavar="N",
        help="max concurrently active jobs before submissions get 429 "
        "(default 16)",
    )
    p.add_argument(
        "--rate", type=float, default=0.0, metavar="R",
        help="per-client token-bucket refill, submissions/second "
        "(default 0: unlimited)",
    )
    p.add_argument(
        "--burst", type=float, default=20.0, metavar="B",
        help="per-client token-bucket capacity (default 20)",
    )
    p.add_argument("--max-retries", type=int, default=2, metavar="N",
                   help="per-point retry budget (default 2)")
    p.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="soft per-point wall-clock budget (default: no deadline)",
    )
    p.add_argument(
        "--batch", type=int, default=None, metavar="N",
        help="points per worker dispatch (default: load-balanced)",
    )
    p.add_argument(
        "--recycle", type=int, default=0, metavar="N",
        help="retire each worker after N points (default 0: never)",
    )
    p.add_argument(
        "--no-disk-cache", action="store_true",
        help="skip the persistent cache (~/.cache/repro-btb)",
    )
    p.add_argument("--cache-dir", default=None, help="persistent cache root")
    p.add_argument(
        "--shard", action=argparse.BooleanOptionalAction, default=True,
        help="fan cache entries into 256 subdirectories per tier "
        "(default on for the daemon; flat caches are still read)",
    )
    p.add_argument(
        "--cache-max-mb", type=float, default=0.0, metavar="MB",
        help="result-store byte budget, LRU-enforced between batches "
        "(default 0: unbounded)",
    )
    p.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="SECONDS",
        help="grace for in-flight work on SIGTERM before aborting it "
        "(default 30)",
    )
    p.add_argument(
        "--state-dir", default=None, metavar="DIR",
        help="write-ahead job store root; accepted jobs are journaled "
        "here and replayed after a crash (default: <cache-root>/service "
        "when the disk cache is on; 'none' disables)",
    )
    p.add_argument(
        "--job-ttl", type=float, default=0.0, metavar="SECONDS",
        help="evict finished jobs (memory + journal) after this long "
        "(default 0: keep until the history limit trims them)",
    )
    p.add_argument(
        "--breaker-threshold", type=int, default=3, metavar="N",
        help="consecutive crash/timeout outcomes for one point before "
        "its circuit breaker opens (default 3)",
    )
    p.add_argument(
        "--breaker-cooldown", type=float, default=60.0, metavar="SECONDS",
        help="how long an open breaker fails fast before admitting one "
        "half-open trial (default 60)",
    )
    p.add_argument(
        "--dist-listen", default=None, metavar="HOST:PORT",
        help="host a dist coordinator at this address and drain sweep "
        "jobs onto connected 'repro-sim worker' fleets instead of the "
        "local pool; fleet counters appear under /v1/metrics "
        "(docs/distributed.md)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "cache", help="inspect and bound the persistent cache"
    )
    cache_sub = p.add_subparsers(dest="cache_command", required=True)

    c = cache_sub.add_parser(
        "stats", help="per-tier entry counts and sizes "
        "(sweeps stale write locks)"
    )
    c.add_argument("--cache-dir", default=None, help="persistent cache root")
    c.add_argument("--json", action="store_true", help="machine-readable output")
    c.set_defaults(func=_cmd_cache_stats)

    c = cache_sub.add_parser(
        "prune", help="LRU-evict entries until the store fits a byte budget"
    )
    c.add_argument("--max-mb", type=float, required=True, metavar="MB",
                   help="target store size in megabytes")
    c.add_argument(
        "--tiers", nargs="*", default=None,
        help="tiers to measure/evict (default: all of "
        "results traces plans obs)",
    )
    c.add_argument("--cache-dir", default=None, help="persistent cache root")
    c.set_defaults(func=_cmd_cache_prune)

    p = sub.add_parser("export", help="export workload traces to CSV")
    p.add_argument("outdir")
    p.add_argument("workloads", nargs="*", help="workload names (default: all)")
    p.add_argument("--length", type=int, default=160_000)
    p.set_defaults(func=_cmd_export)

    p = sub.add_parser(
        "workloads", help="list synthetic and corpus workload names"
    )
    p.add_argument("--corpus-dir", default=None, help="corpus store root")
    p.set_defaults(func=_cmd_workloads)

    p = sub.add_parser("corpus", help="manage the trace corpus store")
    corpus_sub = p.add_subparsers(dest="corpus_command", required=True)

    c = corpus_sub.add_parser(
        "ingest", help="ingest trace files into the corpus store"
    )
    c.add_argument("sources", nargs="+", metavar="FILE",
                   help="trace files (.csv/.champsim/.cvp, optionally .gz/.xz)")
    c.add_argument("--name", default=None,
                   help="entry name (single source only; default: file stem)")
    c.add_argument(
        "--format", default=None, choices=["csv", "champsim", "cvp1"],
        help="source format (default: detect from the file suffix)",
    )
    c.add_argument(
        "--shard-insts", type=int, default=DEFAULT_SHARD_INSTS, metavar="N",
        help=f"instructions per columnar shard (default {DEFAULT_SHARD_INSTS})",
    )
    c.add_argument("--corpus-dir", default=None, help="corpus store root")
    c.set_defaults(func=_cmd_corpus_ingest)

    c = corpus_sub.add_parser("ls", help="list ingested corpus entries")
    c.add_argument("--corpus-dir", default=None, help="corpus store root")
    c.set_defaults(func=_cmd_corpus_ls)

    c = corpus_sub.add_parser("info", help="print one entry's manifest")
    c.add_argument("name", help="corpus entry name")
    c.add_argument("--corpus-dir", default=None, help="corpus store root")
    c.set_defaults(func=_cmd_corpus_info)

    c = corpus_sub.add_parser(
        "verify", help="integrity-check corpus entries (exit 1 on problems)"
    )
    c.add_argument("names", nargs="*", help="entry names (default: all)")
    c.add_argument("--corpus-dir", default=None, help="corpus store root")
    c.set_defaults(func=_cmd_corpus_verify)

    c = corpus_sub.add_parser(
        "gc", help="remove shard directories no manifest references "
        "(and cached batch plans of vanished corpus content)"
    )
    c.add_argument("--dry-run", action="store_true",
                   help="report what would be removed without removing it")
    c.add_argument("--corpus-dir", default=None, help="corpus store root")
    c.add_argument("--cache-dir", default=None, help="persistent cache root")
    c.set_defaults(func=_cmd_corpus_gc)

    p = sub.add_parser("list", help="list workloads and config syntax")
    p.set_defaults(func=_cmd_list)
    return parser


def main(argv: List[str] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ConfigSpecError, TraceFormatError, CorpusError, KernelConfigError) as exc:
        # Malformed config/trace/corpus/engine input: one line on stderr,
        # no traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except SweepError as exc:
        # Strict sweep with persistent failures: completed work is
        # cached/journaled; summarize and exit non-zero.
        first_line = str(exc).splitlines()[0]
        print(f"error: {first_line} (rerun with --resume to continue, "
              "or --no-strict for partial results)", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into e.g. `head`; exit quietly like other CLIs.
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
