"""repro: reproduction of "Branch Target Buffer Organizations" (MICRO 2023).

Quickstart::

    from repro import ibtb, mbbtb, run_one

    result = run_one(ibtb(16), "web_frontend")
    print(result.ipc, result.branch_mpki)

Subpackages: ``repro.trace`` (synthetic workloads), ``repro.branch``
(predictors), ``repro.btb`` (the four BTB organizations), ``repro.memory``
(cache/TLB/DRAM hierarchy), ``repro.frontend`` (decoupled fetch),
``repro.backend`` (timing models), ``repro.core`` (simulator + configs +
runner), ``repro.analysis`` (reporting).
"""

from repro.core import (
    IDEAL_IBTB16,
    MachineConfig,
    SimResult,
    Simulator,
    bbtb,
    build_simulator,
    compare_to_baseline,
    configure_disk_cache,
    hetero_btb,
    ibtb,
    ibtb_skp,
    mbbtb,
    rbtb,
    run_one,
    run_suite,
)
from repro.trace import SERVER_SUITE, SMOKE_SUITE, Trace, get_trace

__version__ = "1.0.0"

__all__ = [
    "IDEAL_IBTB16",
    "MachineConfig",
    "SERVER_SUITE",
    "SMOKE_SUITE",
    "SimResult",
    "Simulator",
    "Trace",
    "bbtb",
    "build_simulator",
    "compare_to_baseline",
    "configure_disk_cache",
    "get_trace",
    "hetero_btb",
    "ibtb",
    "ibtb_skp",
    "mbbtb",
    "rbtb",
    "run_one",
    "run_suite",
    "__version__",
]
