"""Fetch Target Queue: the decoupling queue between PC generation and fetch.

Entries are cache-line granular (Table 1: 64 entries, one entry per cache
line): PC generation pushes (line, first trace index, instruction count)
segments; the fetch stage pops them subject to width, interleave and
I-cache availability constraints. When the queue is empty an entry pushed
this cycle may be consumed this cycle (FTQ bypass, §4.1).

When constructed with an enabled probe (see :mod:`repro.obs`), the queue
emits ``ftq_enqueue`` / ``ftq_dequeue`` / ``ftq_drain`` / ``ftq_flush``
events; with the default :data:`~repro.obs.probe.NULL_PROBE` the hooks
reduce to one cached boolean test.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.obs.events import FTQ_DEQUEUE, FTQ_DRAIN, FTQ_ENQUEUE, FTQ_FLUSH
from repro.obs.probe import NULL_PROBE


class FTQEntry:
    """One cache line's worth of fetch targets."""

    __slots__ = ("line", "first_index", "count", "enq_cycle", "bypass")

    def __init__(self, line: int, first_index: int, count: int, enq_cycle: int, bypass: bool) -> None:
        self.line = line
        self.first_index = first_index
        self.count = count
        self.enq_cycle = enq_cycle
        self.bypass = bypass

    def consumable(self, cycle: int) -> bool:
        """An entry is visible to fetch the cycle after enqueue, or the
        same cycle if it was pushed into an empty queue (bypass)."""
        if self.bypass:
            return self.enq_cycle <= cycle
        return self.enq_cycle < cycle


class FetchTargetQueue:
    """Bounded deque of :class:`FTQEntry`.

    PC generation checks :meth:`has_space` *before* performing a BTB
    access; one access may then push several line segments, transiently
    overshooting the capacity by a few entries (documented modelling
    simplification — structures train exactly once per access).
    """

    def __init__(self, capacity: int = 64, probe=None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: Deque[FTQEntry] = deque()
        self.probe = probe if probe is not None else NULL_PROBE
        self._probe_on = self.probe.enabled

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def empty(self) -> bool:
        return not self._entries

    def has_space(self) -> bool:
        """True when PC generation may perform another access."""
        return len(self._entries) < self.capacity

    def push(self, line: int, first_index: int, count: int, cycle: int) -> None:
        bypass = not self._entries
        self._entries.append(FTQEntry(line, first_index, count, cycle, bypass))
        if self._probe_on:
            self.probe.emit(FTQ_ENQUEUE, line, count)

    def head(self) -> Optional[FTQEntry]:
        return self._entries[0] if self._entries else None

    def pop(self) -> FTQEntry:
        return self._entries.popleft()

    def consume(self, count: int) -> None:
        """Consume *count* instructions from the head entry (partial pops
        keep the remainder at the head)."""
        head = self._entries[0]
        if count > head.count:
            raise ValueError("consuming more than the head entry holds")
        if count == head.count:
            self._entries.popleft()
        else:
            head.count -= count
            head.first_index += count
        if self._probe_on:
            self.probe.emit(FTQ_DEQUEUE, head.line, count)
            if not self._entries:
                self.probe.emit(FTQ_DRAIN)

    def flush(self) -> None:
        """Drop all entries (pipeline resteer)."""
        if self._probe_on and self._entries:
            self.probe.emit(FTQ_FLUSH, len(self._entries))
        self._entries.clear()
