"""Decoupled front end: prediction engine and fetch target queue."""

from repro.frontend.engine import (
    MISFETCH,
    MISPREDICT,
    REDIRECT,
    SEQ,
    PredictionEngine,
)
from repro.frontend.ftq import FetchTargetQueue, FTQEntry

__all__ = [
    "FTQEntry",
    "FetchTargetQueue",
    "MISFETCH",
    "MISPREDICT",
    "PredictionEngine",
    "REDIRECT",
    "SEQ",
]
