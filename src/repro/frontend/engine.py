"""Prediction engine: the per-branch resolve logic shared by all BTBs.

During a PC-generation access, every branch encountered on the walked
(correct) path is resolved against the front-end's speculation state: the
BTB's knowledge of the branch (``known``), the hashed perceptron's
direction prediction, the indirect predictor and the RAS. The outcome is
one of four dispositions:

* ``'seq'``       — fall through, keep generating sequential PCs;
* ``'redirect'``  — correctly predicted taken, PC generation redirects;
* ``'misfetch'``  — wrong next PC, recoverable at decode (direct targets
  are in the instruction bytes; a BTB-missed return gets its target from
  the RAS at decode);
* ``'mispredict'``— wrong next PC, recoverable only at execute
  (conditional direction, indirect target).

Per the paper's methodology (§4.1) all structures train immediately. The
direction predictor is trained on every conditional branch regardless of
BTB knowledge, so predictor accuracy is identical across organizations
and IPC differences isolate BTB effects — misfetches and *mispredictions
caused by untracked branches* — exactly the comparison the paper makes.
"""

from __future__ import annotations

from typing import Optional

from repro.branch.history import GlobalHistory
from repro.branch.indirect import IndirectPredictor, ReturnAddressStack
from repro.branch.perceptron import HashedPerceptron
from repro.btb.base import L1_HIT, L2_HIT, BranchSlot
from repro.common.stats import Stats
from repro.common.types import ILEN, BranchType
from repro.obs import events as ev
from repro.obs.probe import NULL_PROBE

SEQ = "seq"
REDIRECT = "redirect"
MISFETCH = "misfetch"
MISPREDICT = "mispredict"


class PredictionEngine:
    """Bundles the predictors and implements per-branch resolution."""

    #: Observability probe (instance-assigned by the simulator when a run
    #: is instrumented; the class default keeps construction unchanged).
    probe = NULL_PROBE

    def __init__(
        self,
        bp_size_kb: int = 64,
        indirect_entries: int = 4096,
        ras_depth: int = 64,
        stats: Optional[Stats] = None,
    ) -> None:
        self.stats = stats if stats is not None else Stats()
        self.history = GlobalHistory()
        self.perceptron = HashedPerceptron(self.history, size_kb=bp_size_kb)
        self.indirect = IndirectPredictor(self.history, entries=indirect_entries)
        self.ras = ReturnAddressStack(depth=ras_depth)

    # -- statistics helpers ---------------------------------------------------

    def note_btb(self, level: int, taken: bool, pc: int = 0) -> None:
        """Record per-level BTB hit statistics (taken branches only,
        matching the paper's hit-rate definition)."""
        if not taken:
            return
        st = self.stats
        st.add("btb_taken_lookups")
        if level == L1_HIT:
            st.add("btb_taken_l1_hits")
        elif level == L2_HIT:
            st.add("btb_taken_l2_hits")
        probe = self.probe
        if probe.enabled:
            if level == L1_HIT:
                probe.emit(ev.BTB_HIT_L1, pc)
            elif level == L2_HIT:
                probe.emit(ev.BTB_HIT_L2, pc)
            else:
                probe.emit(ev.BTB_MISS, pc)

    # -- branch resolution ------------------------------------------------------

    def resolve(
        self,
        pc: int,
        btype: int,
        taken: bool,
        target: int,
        known: bool,
        slot: Optional[BranchSlot] = None,
    ) -> str:
        """Resolve one dynamic branch; trains all structures (immediate
        update) and returns the disposition string."""
        st = self.stats
        st.add("dyn_branches")
        if taken:
            st.add("dyn_taken_branches")

        if btype == BranchType.COND_DIRECT:
            predicted_taken, total, indices = self.perceptron.predict(pc)
            self.perceptron.update(taken, total, indices)
            self.history.push(taken)
            if not known:
                # The front end never saw a branch here: implicit not-taken.
                if taken:
                    st.add("mispredicts")
                    st.add("mispredicts_cond_untracked")
                    if self.probe.enabled:
                        self.probe.emit(ev.MISPREDICT, pc, btype)
                    return MISPREDICT
                return SEQ
            if predicted_taken != taken:
                st.add("mispredicts")
                st.add("mispredicts_cond")
                if self.probe.enabled:
                    self.probe.emit(ev.MISPREDICT, pc, btype)
                return MISPREDICT
            return REDIRECT if taken else SEQ

        # All remaining types are unconditionally taken.
        self.history.push(True)

        if btype == BranchType.UNCOND_DIRECT or btype == BranchType.CALL_DIRECT:
            if btype == BranchType.CALL_DIRECT:
                self.ras.push(pc + ILEN)
            if known:
                return REDIRECT
            st.add("misfetches")
            if self.probe.enabled:
                self.probe.emit(ev.MISFETCH, pc, btype)
            return MISFETCH

        if btype == BranchType.RETURN:
            ras_target = self.ras.pop()
            ras_ok = ras_target == target
            if not ras_ok:
                st.add("mispredicts")
                st.add("mispredicts_return")
                if self.probe.enabled:
                    self.probe.emit(ev.MISPREDICT, pc, btype)
                return MISPREDICT
            if known:
                return REDIRECT
            # Decode identifies the return and reads the (correct) RAS.
            st.add("misfetches")
            if self.probe.enabled:
                self.probe.emit(ev.MISFETCH, pc, btype)
            return MISFETCH

        # Indirect jump / indirect call.
        predicted = self.indirect.predict(pc)
        if predicted is None and known and slot is not None:
            predicted = slot.target
        self.indirect.update(pc, target)
        if btype == BranchType.CALL_INDIRECT:
            self.ras.push(pc + ILEN)
        if not known:
            st.add("mispredicts")
            st.add("mispredicts_ind_untracked")
            if self.probe.enabled:
                self.probe.emit(ev.MISPREDICT, pc, btype)
            return MISPREDICT
        if predicted != target:
            st.add("mispredicts")
            st.add("mispredicts_indirect")
            if self.probe.enabled:
                self.probe.emit(ev.MISPREDICT, pc, btype)
            return MISPREDICT
        return REDIRECT
