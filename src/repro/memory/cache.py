"""Timing cache model with MSHRs and pluggable prefetchers.

Caches form a linked hierarchy (``parent`` chain ending in
:class:`MainMemory`). The model is latency-oriented, matching what a
trace-driven front-end study needs: an access returns the cycle at which
the data is available. Misses allocate an MSHR; outstanding misses to the
same line merge; when all MSHRs are busy the new miss queues behind the
earliest completing one (bandwidth backpressure).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.common.assoc import SetAssociative
from repro.common.stats import Stats
from repro.common.types import LINE_BYTES


class MainMemory:
    """Fixed-latency DRAM endpoint (Table 1: 3200 MHz quad-channel;
    modelled as a flat latency plus a small bandwidth queue)."""

    def __init__(self, latency: int = 160, bandwidth_per_cycle: float = 1.0) -> None:
        self.latency = latency
        self.bandwidth = bandwidth_per_cycle
        self._next_slot = 0.0
        self.stats = Stats()

    def access(self, line_addr: int, cycle: int, is_prefetch: bool = False) -> int:
        """Return the cycle the line arrives from DRAM."""
        self.stats.add("dram_requests")
        # Simple bandwidth model: requests are spaced 1/bandwidth apart.
        start = max(float(cycle), self._next_slot)
        self._next_slot = start + 1.0 / self.bandwidth
        return int(start) + self.latency


class Cache:
    """One set-associative cache level.

    Parameters mirror Table 1: geometry, load-to-use latency, MSHR count,
    and an optional prefetcher object with an ``on_access(cache, addr,
    cycle, hit)`` hook.
    """

    def __init__(
        self,
        name: str,
        sets: int,
        ways: int,
        latency: int,
        parent,
        mshrs: int = 16,
        prefetcher=None,
    ) -> None:
        self.name = name
        self.array = SetAssociative(sets, ways)
        self.latency = latency
        self.parent = parent
        self.mshrs = mshrs
        self.prefetcher = prefetcher
        #: line -> fill-complete cycle for in-flight misses.
        self._pending: Dict[int, int] = {}
        self.stats = Stats()

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def line_of(addr: int) -> int:
        return addr // LINE_BYTES

    def _reap_pending(self, cycle: int) -> None:
        """Free MSHRs whose fills completed (lazy, called before alloc)."""
        done = [line for line, ready in self._pending.items() if ready <= cycle]
        for line in done:
            del self._pending[line]

    # -- main access path ----------------------------------------------------------

    def access(self, addr: int, cycle: int, is_prefetch: bool = False) -> int:
        """Access *addr*; return the data-ready cycle.

        ``latency`` is the *load-to-use* latency of this level (Table 1's
        numbers), so a hit costs ``latency`` and a miss costs whatever the
        first level (or DRAM) that has the line charges — latencies do not
        stack down the request path.
        """
        line = addr // LINE_BYTES
        st = self.stats
        if not is_prefetch:
            st.add("accesses")
        hit_ready = self.array.lookup(line, line)
        if hit_ready is not None:
            if hit_ready <= cycle:
                ready = cycle + self.latency
            else:
                # Still in flight: merge with the outstanding MSHR.
                ready = hit_ready
                if not is_prefetch:
                    st.add("mshr_merges")
            if self.prefetcher is not None and not is_prefetch:
                self.prefetcher.on_access(self, addr, cycle, hit=True)
            return ready
        pending = self._pending.get(line)
        if pending is not None:
            if pending > cycle:
                # Line was evicted while its fill is still in flight:
                # piggyback on the outstanding request.
                if not is_prefetch:
                    st.add("mshr_merges")
                return pending
            # Stale record of a completed fill: free the MSHR.
            del self._pending[line]
        if not is_prefetch:
            st.add("misses")
        else:
            st.add("prefetch_issued")
        self._reap_pending(cycle)
        issue_cycle = cycle
        if len(self._pending) >= self.mshrs:
            # All MSHRs busy: wait for the earliest completion.
            issue_cycle = max(cycle, min(self._pending.values()))
            st.add("mshr_stalls")
        fill = self.parent.access(line * LINE_BYTES, issue_cycle, is_prefetch)
        self._pending[line] = fill
        self.array.insert(line, line, fill)
        if self.prefetcher is not None and not is_prefetch:
            self.prefetcher.on_access(self, addr, cycle, hit=False)
        return fill

    def prefetch(self, addr: int, cycle: int) -> None:
        """Issue a prefetch for *addr* (no return value; fills the array)."""
        line = addr // LINE_BYTES
        if self.array.lookup(line, line, touch=False) is not None:
            return
        if line in self._pending:
            return
        self._reap_pending(cycle)
        if len(self._pending) >= self.mshrs:
            return  # prefetches are droppable
        fill = self.parent.access(line * LINE_BYTES, cycle, True)
        self._pending[line] = fill
        self.array.insert(line, line, fill)
        self.stats.add("prefetch_fills")

    def contains(self, addr: int) -> bool:
        """True when *addr*'s line is resident (ignores readiness)."""
        line = addr // LINE_BYTES
        return self.array.lookup(line, line, touch=False) is not None

    def ready_cycle(self, addr: int, cycle: int) -> Optional[int]:
        """Data-ready cycle if resident/in-flight, else None (no side
        effects beyond LRU touch)."""
        line = addr // LINE_BYTES
        hit_ready = self.array.lookup(line, line)
        if hit_ready is None:
            return None
        if hit_ready <= cycle:
            return cycle + self.latency
        return hit_ready

    @property
    def hit_rate(self) -> float:
        acc = self.stats.get("accesses")
        if not acc:
            return 0.0
        return 1.0 - self.stats.get("misses") / acc
