"""Hardware prefetchers from Table 1: next-line (L2) and IP-stride (L1D).

Both prefetchers carry an observability ``probe`` (class default: the
inert :data:`~repro.obs.probe.NULL_PROBE`) and emit ``prefetch_issue``
events for every line they push into their cache when instrumented.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.common.types import LINE_BYTES
from repro.obs.events import PREFETCH_ISSUE
from repro.obs.probe import NULL_PROBE


class NextLinePrefetcher:
    """Fetch line N+1 on every demand access (Table 1's L2 prefetcher)."""

    probe = NULL_PROBE

    def __init__(self, degree: int = 1) -> None:
        if degree < 1:
            raise ValueError("degree must be >= 1")
        self.degree = degree

    def on_access(self, cache, addr: int, cycle: int, hit: bool) -> None:
        line = addr // LINE_BYTES
        probe_on = self.probe.enabled
        for d in range(1, self.degree + 1):
            cache.prefetch((line + d) * LINE_BYTES, cycle)
            if probe_on:
                self.probe.emit(PREFETCH_ISSUE, (line + d) * LINE_BYTES)


class IPStridePrefetcher:
    """Classic IP-indexed stride prefetcher (Table 1's L1D prefetcher).

    Per load PC, tracks the last address and last stride with a 2-state
    confidence; once the same stride repeats, prefetches ``degree`` lines
    ahead along it.
    """

    probe = NULL_PROBE

    def __init__(self, table_entries: int = 256, degree: int = 2) -> None:
        self.table_entries = table_entries
        self.degree = degree
        #: pc -> (last_addr, last_stride, confidence)
        self._table: Dict[int, Tuple[int, int, int]] = {}
        self._pc = 0  # set by the caller before each access

    def observe_pc(self, pc: int) -> None:
        """Tell the prefetcher which load PC the next access belongs to."""
        self._pc = pc

    def on_access(self, cache, addr: int, cycle: int, hit: bool) -> None:
        pc = self._pc
        state = self._table.get(pc)
        if state is None:
            if len(self._table) >= self.table_entries:
                # Cheap random-ish replacement: drop an arbitrary entry.
                self._table.pop(next(iter(self._table)))
            self._table[pc] = (addr, 0, 0)
            return
        last_addr, last_stride, conf = state
        stride = addr - last_addr
        if stride != 0 and stride == last_stride:
            conf = min(conf + 1, 3)
        else:
            conf = max(conf - 1, 0)
        self._table[pc] = (addr, stride, conf)
        if conf >= 2 and stride != 0:
            probe_on = self.probe.enabled
            for d in range(1, self.degree + 1):
                cache.prefetch(addr + stride * d, cycle)
                if probe_on:
                    self.probe.emit(PREFETCH_ISSUE, addr + stride * d)
