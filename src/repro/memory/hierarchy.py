"""Composed memory hierarchy per Table 1, with a capacity scale factor.

Paper (Table 1): 32 KB L1I (64s/8w, 3c), 48 KB L1D (64s/12w, 5c load-use),
512 KB L2 (1024s/8w, 15c, next-line prefetcher), 2 MB LLC (2048s/16w,
35c), 64-entry ITLB/DTLB, 1536-entry L2 TLB, DRAM. The ``scale`` factor
shrinks capacities (sets) to keep miss pressure comparable when the
synthetic footprints are smaller than CVP-1's (see DESIGN.md §Scaling).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.cache import Cache, MainMemory
from repro.memory.prefetch import IPStridePrefetcher, NextLinePrefetcher
from repro.memory.tlb import TLB, PageWalker


def _scale_sets(sets: int, scale: float) -> int:
    scaled = max(1, int(sets * scale))
    p = 1
    while p * 2 <= scaled:
        p *= 2
    return p


@dataclass
class MemoryConfig:
    """Knobs of the composed hierarchy (defaults = Table 1).

    ``scale`` shrinks the *instruction-side* L1I (and ITLB) to keep code
    pressure proportional to the scaled synthetic footprints; the data
    side keeps Table-1 capacities — the paper's footprints (138–319 KB)
    also fit its 512 KB L2, so only L1I pressure is load-bearing for the
    front-end study.
    """

    scale: float = 1.0
    l1i_sets: int = 64
    l1i_ways: int = 8
    l1i_latency: int = 3
    l1i_mshrs: int = 16
    l1d_sets: int = 64
    l1d_ways: int = 12
    l1d_latency: int = 5
    l1d_mshrs: int = 16
    l2_sets: int = 1024
    l2_ways: int = 8
    l2_latency: int = 15
    l2_mshrs: int = 32
    llc_sets: int = 2048
    llc_ways: int = 16
    llc_latency: int = 35
    llc_mshrs: int = 64
    itlb_sets: int = 32
    itlb_ways: int = 4
    dtlb_sets: int = 32
    dtlb_ways: int = 4
    l2tlb_sets: int = 128
    l2tlb_ways: int = 12
    l2tlb_latency: int = 8
    dram_latency: int = 160
    walk_latency: int = 60


class MemoryHierarchy:
    """L1I + L1D over a shared L2/LLC/DRAM, plus the TLBs."""

    def __init__(self, config: MemoryConfig = None) -> None:
        cfg = config if config is not None else MemoryConfig()
        self.config = cfg
        s = cfg.scale
        self.dram = MainMemory(latency=cfg.dram_latency)
        self.llc = Cache(
            "LLC", cfg.llc_sets, cfg.llc_ways, cfg.llc_latency,
            self.dram, mshrs=cfg.llc_mshrs,
        )
        self.l2 = Cache(
            "L2", cfg.l2_sets, cfg.l2_ways, cfg.l2_latency,
            self.llc, mshrs=cfg.l2_mshrs, prefetcher=NextLinePrefetcher(),
        )
        self.l1i = Cache(
            "L1I", _scale_sets(cfg.l1i_sets, s), cfg.l1i_ways, cfg.l1i_latency,
            self.l2, mshrs=cfg.l1i_mshrs,
        )
        self.dstride = IPStridePrefetcher()
        self.l1d = Cache(
            "L1D", cfg.l1d_sets, cfg.l1d_ways, cfg.l1d_latency,
            self.l2, mshrs=cfg.l1d_mshrs, prefetcher=self.dstride,
        )
        walker = PageWalker(latency=cfg.walk_latency)
        self.l2tlb = TLB(
            "L2TLB", cfg.l2tlb_sets, cfg.l2tlb_ways,
            cfg.l2tlb_latency, walker,
        )
        self.itlb = TLB("ITLB", _scale_sets(cfg.itlb_sets, s), cfg.itlb_ways, 1, self.l2tlb)
        self.dtlb = TLB("DTLB", cfg.dtlb_sets, cfg.dtlb_ways, 1, self.l2tlb)

    # -- observability ------------------------------------------------------------

    def set_probe(self, probe) -> None:
        """Wire an observability probe into the hierarchy's prefetchers
        (see :mod:`repro.obs`); they emit ``prefetch_issue`` events."""
        for cache in (self.l1i, self.l1d, self.l2, self.llc):
            prefetcher = getattr(cache, "prefetcher", None)
            if prefetcher is not None:
                prefetcher.probe = probe

    # -- front-end interface -----------------------------------------------------

    def ifetch_prefetch(self, line_addr: int, cycle: int) -> None:
        """FDIP: prefetch an instruction line when it enters the FTQ.

        The prefetch needs a translation, so it warms the ITLB too."""
        self.itlb.translate(line_addr, cycle)
        self.l1i.prefetch(line_addr, cycle)

    def ifetch(self, line_addr: int, cycle: int) -> int:
        """Cycle at which an instruction line can feed the fetch pipe.

        The L1I hit latency and the ITLB hit latency are pipeline stages
        (counted in the front end's decode depth), so they are deducted
        here: a resident line is available immediately, a missing line is
        available when its fill completes.
        """
        tlb_done = self.itlb.translate(line_addr, cycle) - self.itlb.latency
        data_done = self.l1i.access(line_addr, cycle) - self.l1i.latency
        avail = tlb_done if tlb_done > data_done else data_done
        return avail if avail > cycle else cycle

    # -- back-end interface --------------------------------------------------------

    def load(self, pc: int, addr: int, cycle: int) -> int:
        """Execute a load; returns data-ready cycle."""
        self.dstride.observe_pc(pc)
        tlb_done = self.dtlb.translate(addr, cycle)
        data_done = self.l1d.access(addr, cycle)
        return max(tlb_done, data_done)

    def store(self, pc: int, addr: int, cycle: int) -> None:
        """Execute a store (fills the line; latency hidden by the SQ)."""
        self.dstride.observe_pc(pc)
        self.dtlb.translate(addr, cycle)
        self.l1d.access(addr, cycle)
