"""Memory substrate: caches, prefetchers, TLBs, DRAM, composed hierarchy."""

from repro.memory.cache import Cache, MainMemory
from repro.memory.hierarchy import MemoryConfig, MemoryHierarchy
from repro.memory.prefetch import IPStridePrefetcher, NextLinePrefetcher
from repro.memory.tlb import PAGE_BYTES, TLB, PageWalker

__all__ = [
    "Cache",
    "IPStridePrefetcher",
    "MainMemory",
    "MemoryConfig",
    "MemoryHierarchy",
    "NextLinePrefetcher",
    "PAGE_BYTES",
    "PageWalker",
    "TLB",
]
