"""TLB hierarchy: ITLB, DTLB and a shared L2 TLB with a fixed-cost walk."""

from __future__ import annotations

from repro.common.assoc import SetAssociative
from repro.common.stats import Stats

#: Page size (4 KB).
PAGE_BYTES = 4096


class TLB:
    """One TLB level; misses go to ``parent`` (another TLB or a walker)."""

    def __init__(self, name: str, sets: int, ways: int, latency: int, parent) -> None:
        self.name = name
        self.array = SetAssociative(sets, ways)
        self.latency = latency
        self.parent = parent
        self.stats = Stats()

    def translate(self, addr: int, cycle: int) -> int:
        """Return the cycle the translation is available."""
        page = addr // PAGE_BYTES
        self.stats.add("accesses")
        if self.array.lookup(page, page) is not None:
            return cycle + self.latency
        self.stats.add("misses")
        done = self.parent.translate(addr, cycle + self.latency)
        self.array.insert(page, page, True)
        return done


class PageWalker:
    """Terminal translation agent: fixed-cost page table walk."""

    def __init__(self, latency: int = 60) -> None:
        self.latency = latency
        self.stats = Stats()

    def translate(self, addr: int, cycle: int) -> int:
        self.stats.add("walks")
        return cycle + self.latency
