"""Write-ahead job store: crash recovery for the service daemon.

Before this store, every accepted job lived only in daemon memory — a
SIGKILL, OOM or disk-full event silently dropped all admitted work,
exactly the failure class the sweep engine itself already survives via
its checkpoint journal (:class:`~repro.core.exec.resilience.SweepJournal`
+ ``repro-sim sweep --resume``). The store extends the same durability
promise to the service layer: **accepted work is never silently
dropped**.

The format deliberately mirrors the engine's checkpoint journal: one
append-only JSONL file per job under ``<root>/jobs/<job_id>.jsonl``,
flushed and fsynced per record, torn trailing lines tolerated on read.
Three record shapes, in lifecycle order::

    {"rec": "submit", "job": ..., "kind": "run"|"sweep", "client": ...,
     "spec": {...original request body...}, "created": ts,
     "sweep": sweep_key(point keys), "schema": 1}
    {"rec": "point", "job": ..., "index": i, ...outcome view...}
    {"rec": "done", "job": ..., "status": "done"|"failed",
     "finished": ts, "failed": n, "result": {...} | null}

``spec`` is the *original request body*: recovery re-parses it through
the same ``/v1/run`` / ``/v1/sweep`` spec parsers, so a recovered job
builds exactly the grid the client asked for, and ``sweep`` is the
engine's order-insensitive :func:`~repro.core.exec.cachekey.sweep_key`
identity over the job's point keys. A restarted daemon replays every
journal: jobs with a ``done`` record are served straight from the store
(result document included); unfinished jobs are re-admitted through the
normal executor path, where the disk cache satisfies every point that
completed before the crash — recovery re-simulates only the tail.

Storage faults degrade, never crash: the first failed append (disk
full, permission lost, root replaced by a file) flips the store into
**degraded** mode — all further appends become no-ops, the daemon keeps
serving from memory and the disk cache, and ``/v1/healthz/ready`` fails
so orchestrators stop routing new traffic to the wounded instance.

The chaos hook :func:`~repro.core.exec.faults.maybe_kill_daemon` runs
after every fsynced append, which is how the CI chaos rig SIGKILLs the
daemon *between* journal appends and then proves byte-identical
recovery.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.core.exec import sweep_key
from repro.core.exec.faults import maybe_kill_daemon

#: Version of the journal record format (bumped on incompatible change;
#: records with a different schema are skipped on load, not crashed on).
STORE_SCHEMA = 1


@dataclass
class StoredJob:
    """One job reconstructed from its journal file."""

    job_id: str
    kind: str = "run"
    client: str = "unknown"
    spec: Dict[str, Any] = field(default_factory=dict)
    created: float = 0.0
    sweep: str = ""
    status: str = "running"
    finished: Optional[float] = None
    failed: int = 0
    result: Optional[dict] = None
    #: index -> last recorded outcome view (pre-crash evidence; recovery
    #: re-executes unfinished jobs regardless, cheaply via the cache).
    outcomes: Dict[int, dict] = field(default_factory=dict)
    #: ``True`` once a valid ``submit`` record was seen — a journal with
    #: only torn/unknown lines is unrecoverable and gets evicted.
    valid: bool = False

    @property
    def terminal(self) -> bool:
        return self.status in ("done", "failed")


class JobStore:
    """Append-only fsync-journaled job records under one root directory.

    All writes happen on the event-loop thread; per-record open/fsync/
    close keeps the store stateless across appends (no fd leaks when
    jobs are evicted) and makes every record durable the moment
    :meth:`append` returns. A failed write flips :attr:`degraded` and is
    never retried — see the module docstring for the semantics.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.degraded = False
        #: Human-readable reason for the degraded flip (healthz surfaces it).
        self.degraded_reason = ""
        #: Durable appends so far (the daemon-kill chaos hook counts these).
        self.appends = 0

    def _path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.jsonl"

    # -- writes --------------------------------------------------------------

    def append(self, job_id: str, record: Dict[str, Any]) -> bool:
        """Durably append one record; ``False`` when degraded (no-op)."""
        if self.degraded:
            return False
        try:
            self.jobs_dir.mkdir(parents=True, exist_ok=True)
            with open(self._path(job_id), "a") as fh:
                fh.write(json.dumps(record, sort_keys=True) + "\n")
                fh.flush()
                os.fsync(fh.fileno())
        except OSError as exc:
            self._degrade(f"journal append failed: {exc}")
            return False
        self.appends += 1
        maybe_kill_daemon(self.appends)
        return True

    def record_submit(self, job) -> bool:
        """Journal one accepted job (call before any point executes)."""
        return self.append(
            job.id,
            {
                "rec": "submit",
                "schema": STORE_SCHEMA,
                "job": job.id,
                "kind": job.kind,
                "client": job.client,
                "spec": job.spec,
                "created": job.created,
                "points": len(job.points),
                "sweep": sweep_key(job.keys),
            },
        )

    def record_point(self, job_id: str, index: int, view: dict) -> bool:
        """Journal one point's final outcome view."""
        return self.append(
            job_id, {"rec": "point", "job": job_id, "index": index, **view}
        )

    def record_done(self, job) -> bool:
        """Journal the terminal state (result document included)."""
        return self.append(
            job.id,
            {
                "rec": "done",
                "job": job.id,
                "status": job.status,
                "finished": job.finished,
                "failed": job.failed_points,
                "result": job.result,
            },
        )

    def _degrade(self, reason: str) -> None:
        if not self.degraded:
            self.degraded = True
            self.degraded_reason = reason
            print(
                f"repro-sim serve: job store degraded ({reason}); "
                "continuing without durability",
                file=sys.stderr,
                flush=True,
            )

    # -- health --------------------------------------------------------------

    def probe(self) -> bool:
        """Actively check journal writability (readiness calls this).

        Writes and removes a probe file; a failure flips the store into
        degraded mode exactly like a failed real append would.
        """
        if self.degraded:
            return False
        try:
            self.jobs_dir.mkdir(parents=True, exist_ok=True)
            path = self.jobs_dir / ".probe"
            path.write_text(str(time.time()))
            path.unlink()
        except OSError as exc:
            self._degrade(f"journal probe failed: {exc}")
            return False
        return True

    # -- reads ---------------------------------------------------------------

    def load(self, job_id: str) -> Optional[StoredJob]:
        """Reconstruct one job from its journal (``None`` if absent/empty)."""
        try:
            text = self._path(job_id).read_text()
        except OSError:
            return None
        stored = StoredJob(job_id=job_id)
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                self._fold(stored, record)
            except (ValueError, KeyError, TypeError):
                continue  # torn mid-write line (e.g. SIGKILL): skip
        return stored if stored.valid else None

    @staticmethod
    def _fold(stored: StoredJob, record: dict) -> None:
        rec = record.get("rec")
        if rec == "submit":
            if record.get("schema") != STORE_SCHEMA:
                return
            stored.kind = str(record["kind"])
            stored.client = str(record.get("client", "unknown"))
            spec = record.get("spec")
            stored.spec = spec if isinstance(spec, dict) else {}
            stored.created = float(record.get("created", 0.0))
            stored.sweep = str(record.get("sweep", ""))
            stored.valid = True
        elif rec == "point":
            stored.outcomes[int(record["index"])] = {
                k: v
                for k, v in record.items()
                if k not in ("rec", "job", "index")
            }
        elif rec == "done":
            stored.status = str(record["status"])
            finished = record.get("finished")
            stored.finished = float(finished) if finished else None
            stored.failed = int(record.get("failed", 0))
            result = record.get("result")
            stored.result = result if isinstance(result, dict) else None

    def load_all(self) -> List[StoredJob]:
        """Every recoverable job, oldest submission first."""
        try:
            paths = sorted(self.jobs_dir.glob("*.jsonl"))
        except OSError:
            return []
        stored = [self.load(path.stem) for path in paths]
        return sorted(
            (s for s in stored if s is not None), key=lambda s: s.created
        )

    # -- eviction ------------------------------------------------------------

    def evict(self, job_id: str) -> None:
        """Drop one job's journal (TTL GC, history trim, bad replay)."""
        try:
            self._path(job_id).unlink()
        except OSError:
            pass
