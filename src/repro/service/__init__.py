"""Sweep-as-a-service: the ``repro-sim serve`` simulation daemon.

A long-running asyncio HTTP/JSON front end over the sweep engine
(:mod:`repro.core.exec`), turning the one-shot CLI into a server that
can absorb heavy simulation traffic (see ``docs/service.md``):

* :mod:`repro.service.coalesce` — single-flight request deduplication:
  concurrent identical points (same content-hash cache key) coalesce
  onto one in-flight execution;
* :mod:`repro.service.limits` — per-client token-bucket rate limiting;
* :mod:`repro.service.metrics` — service-level counters plus the rollup
  of engine resilience and cache counters;
* :mod:`repro.service.jobs` — job lifecycle: admission control over a
  bounded queue, batch dispatch onto ``run_points(strict=False)``, live
  per-point event feeds, and the result-cache size budget;
* :mod:`repro.service.store` — the write-ahead job store: every
  accepted job is fsync-journaled (submit → outcomes → terminal state)
  and replayed on restart, making a SIGKILLed daemon crash-recoverable;
* :mod:`repro.service.breaker` — poison-point circuit breakers that
  fail fast on points which crash-looped across jobs;
* :mod:`repro.service.server` — the HTTP server itself: ``/v1/run``,
  ``/v1/sweep``, ``/v1/jobs``, ``/v1/jobs/<id>``,
  ``/v1/jobs/<id>/events`` (NDJSON), ``/v1/healthz`` (+ ``/live`` and
  ``/ready`` probes), ``/v1/metrics``, and graceful SIGTERM drain.

Everything is standard library only (asyncio + hand-rolled HTTP/1.1);
the daemon adds no dependencies over the simulator itself.
"""

from repro.service.breaker import PoisonBreaker
from repro.service.coalesce import Flight, SingleFlight
from repro.service.jobs import AdmissionError, Job, JobManager
from repro.service.limits import ClientLimiter, TokenBucket
from repro.service.metrics import ServiceMetrics
from repro.service.server import Service, ServiceConfig
from repro.service.store import JobStore, StoredJob

__all__ = [
    "AdmissionError",
    "ClientLimiter",
    "Flight",
    "Job",
    "JobManager",
    "JobStore",
    "PoisonBreaker",
    "Service",
    "ServiceConfig",
    "ServiceMetrics",
    "SingleFlight",
    "StoredJob",
    "TokenBucket",
]
