"""The ``repro-sim serve`` HTTP front end (stdlib asyncio only).

A deliberately small HTTP/1.1 server over :func:`asyncio.start_server`
— no web framework, matching the repo's no-new-dependencies rule. Every
connection carries one request and is closed after the response
(``Connection: close``), which keeps framing trivial and lets the
NDJSON event stream end naturally at EOF.

Routes (see ``docs/service.md`` for the full API reference)::

    POST /v1/run              submit one (config, workload) point
    POST /v1/sweep            submit a sweep grid (baseline-normalized)
    GET  /v1/jobs             paginated job list (?state=&limit=&after=)
    GET  /v1/jobs/<id>        job status + outcomes (+ result when done)
    GET  /v1/jobs/<id>/events NDJSON live per-point progress
    GET  /v1/healthz          combined health document
    GET  /v1/healthz/live     liveness probe (200 while the process runs)
    GET  /v1/healthz/ready    readiness probe (503 draining/degraded/dead)
    GET  /v1/metrics          service + resilience + cache counters

Submissions may carry a deadline (``X-Deadline-Ms`` header or a
``timeout_s`` spec field) that propagates into the engine. On startup
the daemon replays its write-ahead job store
(:mod:`repro.service.store`): finished pre-crash jobs are served from
the journal, unfinished ones are re-admitted through the normal
executor path and marked ``recovered``.

SIGTERM/SIGINT trigger a graceful drain: new submissions get ``503``,
queued and in-flight points finish (their results are already in the
disk cache for the next process), then the listener closes.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs

from repro.core.config import IDEAL_IBTB16
from repro.core.exec import RetryPolicy, SweepPoint, get_disk_cache, point_key
from repro.corpus import is_corpus_workload
from repro.service.breaker import PoisonBreaker
from repro.service.jobs import AdmissionError, Job, JobManager
from repro.service.limits import ClientLimiter
from repro.service.metrics import ServiceMetrics
from repro.service.store import JobStore, StoredJob


class BadRequest(ValueError):
    """A 400: malformed body, unknown config spec or workload."""


@dataclass
class ServiceConfig:
    """Tunables for one daemon instance (CLI flags map 1:1)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the actual port is printed + stored
    jobs: int = 2
    queue_limit: int = 16
    batch_max: int = 256
    rate: float = 0.0  # submissions/second per client; <=0 disables
    burst: float = 20.0
    max_retries: int = 2
    timeout: Optional[float] = None
    batch: Optional[int] = None
    recycle: int = 0
    cache_max_bytes: int = 0  # result-store budget; 0 = unbounded
    drain_timeout: float = 30.0
    max_body: int = 1 << 20
    history_limit: int = 256
    state_dir: Optional[str] = None  # write-ahead job store root; None = off
    job_ttl: float = 0.0  # evict finished jobs after N seconds; 0 = never
    breaker_threshold: int = 3  # crash/timeout outcomes before tripping
    breaker_cooldown: float = 60.0  # seconds open before a half-open trial
    #: Host a dist coordinator at "host:port" and drain sweep flights
    #: onto connected `repro-sim worker` fleets (docs/distributed.md).
    dist_listen: Optional[str] = None


class Service:
    """One daemon: listener + :class:`JobManager` + signal handling."""

    def __init__(
        self, config: Optional[ServiceConfig] = None, quiet: bool = False
    ) -> None:
        self.config = config or ServiceConfig()
        self.quiet = quiet
        self.metrics = ServiceMetrics()
        store = (
            JobStore(self.config.state_dir)
            if self.config.state_dir
            else None
        )
        self.manager = JobManager(
            jobs=self.config.jobs,
            queue_limit=self.config.queue_limit,
            batch_max=self.config.batch_max,
            policy=RetryPolicy(
                max_retries=self.config.max_retries,
                timeout=self.config.timeout,
            ),
            batch=self.config.batch,
            recycle=self.config.recycle,
            limiter=ClientLimiter(self.config.rate, self.config.burst),
            metrics=self.metrics,
            cache_max_bytes=self.config.cache_max_bytes,
            history_limit=self.config.history_limit,
            store=store,
            breaker=PoisonBreaker(
                threshold=self.config.breaker_threshold,
                cooldown=self.config.breaker_cooldown,
            ),
            job_ttl=self.config.job_ttl,
        )
        self.coordinator = None  # dist coordinator when --dist-listen is set
        self.port: Optional[int] = None
        self.aborted_on_drain = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None

    # -- lifecycle ----------------------------------------------------------

    async def run(self, ready: Optional[asyncio.Event] = None) -> int:
        """Serve until drained; returns the process exit code."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        if self.config.dist_listen:
            # Start the coordinator before the executor/recovery so even
            # recovered jobs' batches drain onto the remote fleet.
            from repro.dist import get_coordinator

            self.coordinator = get_coordinator(self.config.dist_listen)
            self.manager.dispatch = (
                f"{self.coordinator.host}:{self.coordinator.port}"
            )
            if not self.quiet:
                print(
                    f"repro-sim serve: dist coordinator listening on "
                    f"tcp://{self.coordinator.address} "
                    f"({self.coordinator.workers_live()} worker(s) "
                    f"connected)",
                    flush=True,
                )
        self.manager.start()
        self._recover_jobs()
        server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = server.sockets[0].getsockname()[1]
        self._install_signal_handlers()
        if not self.quiet:
            print(
                f"repro-sim serve: listening on "
                f"http://{self.config.host}:{self.port} "
                f"(jobs={self.manager.worker_jobs}, "
                f"queue_limit={self.config.queue_limit})",
                flush=True,
            )
        if ready is not None:
            ready.set()
        await self._stop.wait()
        # Graceful drain: admission already rejects with 503; let the
        # executor finish queued + in-flight batches, then close.
        drained = await self.manager.wait_drained(self.config.drain_timeout)
        if not drained:
            self.aborted_on_drain = self.manager.abort_remaining()
            if not self.quiet:
                print(
                    f"repro-sim serve: drain timed out, aborted "
                    f"{self.aborted_on_drain} in-flight point(s)",
                    file=sys.stderr,
                    flush=True,
                )
        server.close()
        await server.wait_closed()
        self.manager.shutdown()
        if self.coordinator is not None:
            from repro.dist import shutdown_coordinators

            await asyncio.get_running_loop().run_in_executor(
                None, shutdown_coordinators
            )
            self.coordinator = None
        if not self.quiet:
            print("repro-sim serve: drained, bye", flush=True)
        return 0 if drained else 1

    def request_drain(self) -> None:
        """Begin graceful shutdown (call on the event-loop thread)."""
        self.manager.begin_drain()
        if self._stop is not None:
            self._stop.set()

    def request_drain_threadsafe(self) -> None:
        """Drain trigger for other threads (tests, embedding harnesses)."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.request_drain)

    def _install_signal_handlers(self) -> None:
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(sig, self.request_drain)
            except (NotImplementedError, RuntimeError, ValueError):
                # Non-main-thread loops (tests) and platforms without
                # loop signal support fall back to request_drain().
                pass

    # -- crash recovery -----------------------------------------------------

    def _recover_jobs(self) -> None:
        """Replay the write-ahead job store into the manager.

        Runs on the loop thread before the listener opens, so every
        pre-crash job id answers ``GET /v1/jobs/<id>`` from the first
        accepted connection. Finished jobs are adopted verbatim (result
        document straight from the journal); unfinished ones re-enter
        through :meth:`JobManager.submit` with ``recovered=True`` — the
        normal executor path, where the disk cache satisfies every point
        that completed before the crash. Pre-crash deadlines are
        dropped: a budget granted against a dead wall-clock is
        meaningless after restart. Unparseable journals (e.g. a corpus
        workload since deleted) are evicted with a warning, never fatal.
        """
        store = self.manager.store
        if store is None:
            return
        for stored in store.load_all():
            try:
                job = self._recover_one(stored)
            except Exception as exc:
                self.metrics.bump("jobs_recovery_failed")
                store.evict(stored.job_id)
                if not self.quiet:
                    print(
                        f"repro-sim serve: dropped unrecoverable job "
                        f"{stored.job_id}: {exc}",
                        file=sys.stderr,
                        flush=True,
                    )
                continue
            if not self.quiet:
                print(
                    f"repro-sim serve: recovered job {job.id} "
                    f"({job.status}, {len(job.points)} point(s))",
                    flush=True,
                )

    def _recover_one(self, stored: StoredJob) -> Job:
        if stored.kind == "run":
            points, extras = _parse_run_spec(stored.spec)
        else:
            points, extras = _parse_sweep_spec(stored.spec)
        if not stored.terminal:
            return self.manager.submit(
                stored.kind,
                points,
                stored.client,
                stored.spec,
                **extras,
                job_id=stored.job_id,
                created=stored.created,
                recovered=True,
            )
        job = Job(
            job_id=stored.job_id,
            kind=stored.kind,
            points=points,
            keys=[point_key(point) for point in points],
            client=stored.client,
            spec=stored.spec,
            recovered=True,
            **extras,
        )
        job.created = stored.created
        job.finished = stored.finished
        job.status = stored.status
        job.failed_points = stored.failed
        job.result = stored.result
        job.pending = 0
        for index, view in stored.outcomes.items():
            if 0 <= index < len(job.outcomes):
                job.outcomes[index] = view
        job._emit("recovered", status=job.status, points=len(job.points))
        job.done.set()
        self.manager.adopt(job)
        return job

    # -- HTTP plumbing ------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await self._handle_request(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # never let one request kill the daemon
            try:
                await self._respond(
                    writer, 500, {"error": f"internal error: {exc}"}
                )
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _handle_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            return
        parts = request_line.split()
        if len(parts) != 3:
            await self._respond(writer, 400, {"error": "malformed request line"})
            return
        method, target, _version = parts
        headers = await self._read_headers(reader)
        body = b""
        length = int(headers.get("content-length", "0") or "0")
        if length > self.config.max_body:
            await self._respond(writer, 413, {"error": "body too large"})
            return
        if length:
            body = await reader.readexactly(length)
        client = headers.get("x-client-id") or self._peer(writer)
        await self._route(writer, method, target, headers, body, client)

    @staticmethod
    async def _read_headers(reader: asyncio.StreamReader) -> Dict[str, str]:
        headers: Dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
            if not line:
                return headers
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()

    @staticmethod
    def _peer(writer: asyncio.StreamWriter) -> str:
        peer = writer.get_extra_info("peername")
        return str(peer[0]) if peer else "unknown"

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        retry_after: Optional[float] = None,
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        reason = {
            200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            429: "Too Many Requests", 500: "Internal Server Error",
            503: "Service Unavailable",
        }.get(status, "OK")
        head = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        if retry_after is not None:
            head.append(f"Retry-After: {max(1, int(retry_after + 0.999))}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
        await writer.drain()

    # -- routing ------------------------------------------------------------

    async def _route(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        target: str,
        headers: Dict[str, str],
        body: bytes,
        client: str,
    ) -> None:
        path, _, query = target.partition("?")
        if path == "/v1/healthz" and method == "GET":
            await self._respond(writer, 200, self._healthz())
            return
        if path == "/v1/healthz/live" and method == "GET":
            await self._respond(writer, 200, self._liveness())
            return
        if path == "/v1/healthz/ready" and method == "GET":
            ready, doc = self._readiness()
            await self._respond(writer, 200 if ready else 503, doc)
            return
        if path == "/v1/metrics" and method == "GET":
            await self._respond(writer, 200, self._metrics_doc())
            return
        if path in ("/v1/run", "/v1/sweep"):
            if method != "POST":
                await self._respond(writer, 405, {"error": "POST required"})
                return
            await self._submit(writer, path, body, client, headers)
            return
        if path == "/v1/jobs" and method == "GET":
            await self._list_jobs(writer, query)
            return
        if path.startswith("/v1/jobs/") and method == "GET":
            rest = path[len("/v1/jobs/"):]
            if rest.endswith("/events"):
                job = self.manager.get(rest[: -len("/events")])
                if job is None:
                    await self._respond(writer, 404, {"error": "no such job"})
                    return
                await self._stream_events(writer, job)
                return
            job = self.manager.get(rest)
            if job is None:
                await self._respond(writer, 404, {"error": "no such job"})
                return
            await self._respond(writer, 200, job.to_json())
            return
        await self._respond(writer, 404, {"error": f"no route for {path}"})

    async def _submit(
        self,
        writer: asyncio.StreamWriter,
        path: str,
        body: bytes,
        client: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        try:
            spec = json.loads(body.decode() or "{}")
            if not isinstance(spec, dict):
                raise BadRequest("request body must be a JSON object")
            deadline_s = _parse_deadline(spec, headers or {})
            if path == "/v1/run":
                points, extras = _parse_run_spec(spec)
                job = self.manager.submit(
                    "run", points, client, spec, deadline_s=deadline_s,
                    **extras
                )
            else:
                points, extras = _parse_sweep_spec(spec)
                job = self.manager.submit(
                    "sweep", points, client, spec, deadline_s=deadline_s,
                    **extras
                )
        except AdmissionError as exc:
            await self._respond(
                writer,
                exc.status,
                {"error": exc.reason, "retry_after": exc.retry_after},
                retry_after=exc.retry_after or 1.0,
            )
            return
        except (BadRequest, ValueError, TypeError, KeyError) as exc:
            await self._respond(writer, 400, {"error": str(exc)})
            return
        await self._respond(
            writer,
            202,
            {
                "job": job.id,
                "points": len(job.points),
                "coalesced": job.coalesced,
                "status_url": f"/v1/jobs/{job.id}",
                "events_url": f"/v1/jobs/{job.id}/events",
            },
        )

    async def _stream_events(
        self, writer: asyncio.StreamWriter, job: Job
    ) -> None:
        """NDJSON live feed: one event per line, EOF when the job ends."""
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode())
        await writer.drain()
        sent = 0
        while True:
            while sent < len(job.events):
                line = json.dumps(job.events[sent], sort_keys=True) + "\n"
                writer.write(line.encode())
                await writer.drain()
                self.metrics.bump("events_streamed")
                sent += 1
            if job.done.is_set() and sent >= len(job.events):
                return
            try:
                await asyncio.wait_for(job.done.wait(), timeout=0.05)
            except asyncio.TimeoutError:
                pass

    async def _list_jobs(
        self, writer: asyncio.StreamWriter, query: str
    ) -> None:
        """``GET /v1/jobs``: paginated summaries, oldest first."""
        params = parse_qs(query)
        state = params.get("state", [None])[0]
        if state is not None and state not in ("running", "done", "failed"):
            await self._respond(
                writer,
                400,
                {"error": f"unknown state filter {state!r} "
                 "(running | done | failed)"},
            )
            return
        try:
            limit = int(params.get("limit", ["50"])[0])
        except ValueError:
            await self._respond(writer, 400, {"error": "limit must be an int"})
            return
        after = params.get("after", [None])[0]
        jobs, next_after = self.manager.list_jobs(state, after, limit)
        await self._respond(
            writer,
            200,
            {
                "jobs": [job.summary_json() for job in jobs],
                "next_after": next_after,
                "total": len(self.manager.jobs),
            },
        )

    # -- documents ----------------------------------------------------------

    def _healthz(self) -> dict:
        """Combined health document (back-compat `status` + both probes)."""
        ready, readiness = self._readiness()
        status = "ok"
        if self.manager.degraded:
            status = "degraded"
        elif self.manager.draining:
            status = "draining"
        return {
            "status": status,
            "ready": ready,
            "jobs_active": self.manager.active_jobs,
            "queue_depth": self.manager.queue_depth,
            "worker_jobs": self.manager.worker_jobs,
            "readiness": readiness,
        }

    def _liveness(self) -> dict:
        """The process is up and the loop answered — nothing else.

        Draining and degraded daemons stay *live* (they are finishing or
        serving read-only work); orchestrators must not kill them for it.
        """
        return {
            "status": "alive",
            "uptime_s": round(time.time() - self.metrics.started, 3),
        }

    def _readiness(self) -> Tuple[bool, dict]:
        """Should a load balancer route new work here?

        ``False`` while draining (shutting down), degraded (journal or
        cache storage faulted — read-only-cache mode), or with a dead
        executor task (no batch would ever run). The document carries
        the evidence: executor heartbeat age, journal writability, and
        the degraded reason when one exists.
        """
        manager = self.manager
        journal_writable = None
        if manager.store is not None:
            journal_writable = manager.store.probe()
        executor_alive = manager.executor_alive
        ready = (
            not manager.draining
            and not manager.degraded
            and executor_alive
        )
        doc = {
            "ready": ready,
            "draining": manager.draining,
            "degraded": manager.degraded,
            "executor_alive": executor_alive,
            "heartbeat_age_s": round(
                max(0.0, time.time() - manager.last_heartbeat), 3
            ),
            "journal_writable": journal_writable,
            "breaker_open_points": manager.breaker.counters()[
                "breaker_open_points"
            ],
        }
        if manager.degraded:
            doc["degraded_reason"] = manager.store.degraded_reason
        return ready, doc

    def _metrics_doc(self) -> dict:
        disk = get_disk_cache()
        manager = self.manager
        store_gauges = {}
        if manager.store is not None:
            store_gauges = {
                "store_appends": manager.store.appends,
                "store_degraded": int(manager.store.degraded),
            }
        return self.metrics.snapshot(
            disk.snapshot() if disk is not None else None,
            dist_counters=(
                self.coordinator.counters()
                if self.coordinator is not None
                else None
            ),
            queue_depth=manager.queue_depth,
            jobs_active=manager.active_jobs,
            flights_inflight=len(manager.singleflight),
            draining=int(manager.draining),
            **manager.breaker.counters(),
            **store_gauges,
        )


# -- request spec parsing ----------------------------------------------------


def _parse_common(spec: dict) -> Tuple[int, int, int]:
    length = int(spec.get("length", 160_000))
    if length <= 0:
        raise BadRequest("length must be positive")
    warmup = spec.get("warmup")
    warmup = length // 4 if warmup is None else int(warmup)
    if warmup < 0:
        raise BadRequest("warmup must be >= 0")
    seed = int(spec.get("seed", 7))
    return length, warmup, seed


def _check_workload(name: str) -> str:
    from repro.trace.workloads import SERVER_SUITE

    if not isinstance(name, str):
        raise BadRequest(f"workload must be a string, got {name!r}")
    if name in SERVER_SUITE or is_corpus_workload(name):
        return name
    raise BadRequest(
        f"unknown workload {name!r} (synthetic suite or corpus:<name>)"
    )


def _parse_deadline(spec: dict, headers: Dict[str, str]) -> Optional[float]:
    """The request deadline in seconds, or ``None`` for unbounded.

    ``X-Deadline-Ms`` (header, milliseconds) wins over ``timeout_s``
    (spec field, seconds); both must be non-negative numbers. ``0``
    means "already expired" — the job is admitted and every point fails
    fast with ``deadline-exceeded``, which is the cheapest way to probe
    what a sweep *would* schedule.
    """
    raw = headers.get("x-deadline-ms")
    if raw is not None:
        try:
            millis = float(raw)
        except ValueError:
            raise BadRequest(f"X-Deadline-Ms must be a number, got {raw!r}")
        if millis < 0:
            raise BadRequest("X-Deadline-Ms must be >= 0")
        return millis / 1000.0
    raw = spec.get("timeout_s")
    if raw is None:
        return None
    if isinstance(raw, bool) or not isinstance(raw, (int, float)):
        raise BadRequest(f"timeout_s must be a number, got {raw!r}")
    if raw < 0:
        raise BadRequest("timeout_s must be >= 0")
    return float(raw)


def _parse_run_spec(spec: dict):
    """``/v1/run``: one point. ``{"config": "...", "workload": "..."}``."""
    from repro.cli import parse_config

    if "config" not in spec or "workload" not in spec:
        raise BadRequest("run spec needs 'config' and 'workload'")
    config = parse_config(str(spec["config"]))
    workload = _check_workload(spec["workload"])
    length, warmup, seed = _parse_common(spec)
    return [SweepPoint(config, workload, length, warmup, seed)], {}


def _parse_sweep_spec(spec: dict):
    """``/v1/sweep``: the CLI sweep grid ``[baseline, *configs] × workloads``."""
    from repro.cli import SWEEP_DEFAULT_SPECS, parse_config
    from repro.trace.workloads import SERVER_SUITE

    raw_configs = spec.get("configs") or SWEEP_DEFAULT_SPECS
    if not isinstance(raw_configs, (list, tuple)):
        raise BadRequest("'configs' must be a list of config specs")
    configs = [parse_config(str(s)) for s in raw_configs]
    raw_workloads = spec.get("workloads") or list(SERVER_SUITE)
    if not isinstance(raw_workloads, (list, tuple)):
        raise BadRequest("'workloads' must be a list of workload names")
    workloads = [_check_workload(name) for name in raw_workloads]
    length, warmup, seed = _parse_common(spec)
    points = [
        SweepPoint(config, name, length, warmup, seed)
        for config in [IDEAL_IBTB16, *configs]
        for name in workloads
    ]
    return points, {
        "configs": configs,
        "workloads": workloads,
        "baseline_label": IDEAL_IBTB16.label,
    }
