"""Poison-point circuit breakers for the service daemon.

The engine already quarantines a poison point *within* one sweep: the
crashed worker is detected, the point is blamed, retried with backoff,
and finally classified. But a durable front end sees the same poison
point again on the *next* job — and the one after — each time re-burning
``max_retries + 1`` worker executions (plus worker respawns for kills)
before failing. At fleet scale that converts one bad config into a
standing tax on the whole pool.

A :class:`PoisonBreaker` remembers crash/timeout outcomes per
``point_key`` **across jobs** and fails repeat offenders fast:

* **closed** (default) — outcomes stream through, consecutive
  crash/timeout failures are counted;
* **open** — after ``threshold`` such failures, subsequent submissions
  of the key are resolved immediately with the cached classified error
  (message prefixed ``circuit-open:``), no worker dispatched;
* **half-open** — after ``cooldown`` seconds, exactly one trial
  submission is admitted; its success closes the breaker (state
  forgotten), another crash/timeout re-opens it for a fresh cool-down.
  Concurrent submissions during the trial still fail fast.

Only ``worker-crash`` and ``timeout`` outcomes count: a deterministic
Python exception is cheap to reproduce and carries a real traceback the
client wants, and deadline expiries (message prefix
``deadline-exceeded``) blame the job's budget, not the point. Success
clears all state for the key, so the table only ever holds actively
poisonous points.

Time is injected (``clock``) so tests trip and half-open the breaker
deterministically. All methods run on the event-loop thread.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core.exec import DEADLINE_MESSAGE, PointError

#: Outcome kinds that count as poison evidence.
TRIP_KINDS = ("worker-crash", "timeout")

#: Message prefix of every fast-failed outcome, so clients and tests can
#: distinguish "the breaker is open" from a fresh execution failure.
CIRCUIT_MESSAGE = "circuit-open"


@dataclass
class _Entry:
    """Per-key breaker state (exists only for failing keys)."""

    failures: int = 0
    state: str = "closed"  # closed | open | half-open
    opened_at: float = 0.0
    #: The last real classified error, replayed on fast-fails.
    error: Optional[PointError] = None


class PoisonBreaker:
    """Cross-job circuit breakers keyed by point cache key."""

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 60.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.threshold = max(1, int(threshold))
        self.cooldown = float(cooldown)
        self._clock = clock or time.monotonic
        self._entries: Dict[str, _Entry] = {}
        # Monotonic counters (the manager folds them into /v1/metrics).
        self.trips = 0
        self.fast_fails = 0
        self.half_opens = 0
        self.closes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def state(self, key: str) -> str:
        entry = self._entries.get(key)
        return entry.state if entry is not None else "closed"

    def check(self, key: str) -> Optional[PointError]:
        """Admission check for one submission of *key*.

        ``None`` admits the point to the execution queue. A
        :class:`PointError` means fail fast with it (the cached error,
        re-labelled with the ``circuit-open`` prefix), executing nothing.
        """
        entry = self._entries.get(key)
        if entry is None or entry.state == "closed":
            return None
        if entry.state == "open" and (
            self._clock() - entry.opened_at >= self.cooldown
        ):
            # Cool-down elapsed: this caller becomes the half-open trial.
            entry.state = "half-open"
            self.half_opens += 1
            return None
        # Open (cooling down) or half-open with a trial already in
        # flight: replay the cached error without burning a worker.
        self.fast_fails += 1
        cached = entry.error
        return PointError(
            kind=cached.kind if cached is not None else "worker-crash",
            point_key=key,
            attempts=0,
            message=(
                f"{CIRCUIT_MESSAGE}: {entry.failures} consecutive "
                f"{'/'.join(TRIP_KINDS)} outcomes for this point; "
                f"last: {cached.message if cached is not None else 'unknown'}"
            ),
        )

    def record(self, key: str, outcome) -> None:
        """Fold one *executed* outcome (never a fast-fail) for *key*."""
        entry = self._entries.get(key)
        if outcome.ok:
            if entry is not None:
                del self._entries[key]
                self.closes += 1
            return
        error = outcome.error
        if (
            error is None
            or error.kind not in TRIP_KINDS
            or error.message.startswith(DEADLINE_MESSAGE)
        ):
            # Deterministic exceptions and deadline expiries are not
            # poison evidence; a half-open trial ending this way closes
            # the breaker (the point no longer crash-loops).
            if entry is not None:
                del self._entries[key]
                self.closes += 1
            return
        if entry is None:
            entry = self._entries[key] = _Entry()
        entry.failures += 1
        entry.error = error
        if entry.state == "half-open" or entry.failures >= self.threshold:
            if entry.state != "open":
                self.trips += 1
            entry.state = "open"
            entry.opened_at = self._clock()

    def counters(self) -> Dict[str, int]:
        """Snapshot for the metrics document."""
        return {
            "breaker_trips": self.trips,
            "breaker_fast_fails": self.fast_fails,
            "breaker_half_opens": self.half_opens,
            "breaker_closes": self.closes,
            "breaker_open_points": sum(
                1 for e in self._entries.values() if e.state != "closed"
            ),
        }
