"""Single-flight coalescing of concurrent identical simulation points.

The engine already deduplicates *across* invocations through the
content-hash disk cache; this table deduplicates *within* the daemon's
in-flight window. Every submitted point is identified by its persistent
cache key (:func:`repro.core.exec.point_key`), so "identical" has
exactly the cache's meaning: same config, workload, length, warmup and
seed, with observability intentionally excluded.

A :class:`Flight` is one pending execution of one unique point. The
first job to request a key becomes the flight's *leader* and puts it on
the execution queue; every later job requesting the same key while the
flight is unresolved *attaches* as a subscriber instead of executing
anything. When the outcome arrives, all subscribers are notified and
the flight leaves the table — a later request for the same key starts a
new flight, which the disk cache then satisfies without re-simulating.

All methods run on the event-loop thread; there is no locking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

#: A subscriber: ``(callback, context)`` — the callback receives
#: ``(context, outcome)`` when the flight resolves.
Subscriber = Tuple[Callable[[Any, Any], None], Any]


@dataclass
class Flight:
    """One in-flight unique point and everyone waiting on it.

    ``deadline`` is the loosest (latest) deadline of every subscribed
    job — an absolute ``time.monotonic()`` instant, ``None`` meaning
    unbounded. Coalescing widens it: a twin with no deadline removes the
    bound entirely, so one impatient job can never shorten the run a
    patient job coalesced onto.
    """

    key: str
    point: Any  # SweepPoint (kept loose to avoid an import cycle)
    subscribers: List[Subscriber] = field(default_factory=list)
    resolved: bool = False
    outcome: Any = None
    deadline: Optional[float] = None

    def widen_deadline(self, deadline: Optional[float]) -> None:
        """Fold one more subscriber's deadline in (``None`` = unbounded)."""
        if self.deadline is None:
            return
        if deadline is None:
            self.deadline = None
        else:
            self.deadline = max(self.deadline, deadline)

    def subscribe(self, callback: Callable[[Any, Any], None], context: Any) -> None:
        if self.resolved:  # pragma: no cover - resolved flights leave the table
            callback(context, self.outcome)
            return
        self.subscribers.append((callback, context))

    def resolve(self, outcome: Any) -> None:
        self.resolved = True
        self.outcome = outcome
        subscribers, self.subscribers = self.subscribers, []
        for callback, context in subscribers:
            callback(context, outcome)


class SingleFlight:
    """The key → :class:`Flight` table with coalescing counters."""

    def __init__(self) -> None:
        self._flights: Dict[str, Flight] = {}
        #: Unique flights created (each is executed at most once).
        self.started = 0
        #: Requests that attached to an existing flight instead of
        #: executing — the daemon's headline deduplication metric.
        self.coalesced = 0

    def __len__(self) -> int:
        return len(self._flights)

    def get(self, key: str) -> Optional[Flight]:
        return self._flights.get(key)

    def admit(self, key: str, point: Any) -> Tuple[Flight, bool]:
        """The flight for *key*, creating one if none is in flight.

        Returns ``(flight, leader)``: ``leader`` is ``True`` when the
        caller created the flight and owns putting it on the execution
        queue; ``False`` means the caller coalesced onto existing work.
        """
        flight = self._flights.get(key)
        if flight is not None:
            self.coalesced += 1
            return flight, False
        flight = Flight(key=key, point=point)
        self._flights[key] = flight
        self.started += 1
        return flight, True

    def resolve(self, key: str, outcome: Any) -> None:
        """Resolve and retire the flight for *key* (idempotent)."""
        flight = self._flights.pop(key, None)
        if flight is not None:
            flight.resolve(outcome)

    def abort_all(self, outcome_factory: Callable[[Flight], Any]) -> int:
        """Resolve every remaining flight with a synthesized outcome.

        Used on drain timeout so no subscriber waits forever. Returns
        the number of flights aborted.
        """
        flights, self._flights = list(self._flights.values()), {}
        for flight in flights:
            flight.resolve(outcome_factory(flight))
        return len(flights)
