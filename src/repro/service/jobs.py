"""Job lifecycle for the service daemon: admission → batches → results.

A *job* is one client request — a single point (``POST /v1/run``) or a
config × workload sweep grid (``POST /v1/sweep``). Jobs never execute
anything themselves: every point is admitted into the single-flight
table (:mod:`repro.service.coalesce`) under its content-hash cache key,
and only flight *leaders* reach the execution queue. The executor loop
drains that queue in batches onto the engine's resilient pool —
``run_points(strict=False)`` with the daemon's worker count — so
concurrent jobs share one warm pool and one pass over any shared
points, and an injected worker crash surfaces as a classified per-point
error in the job report instead of a dead daemon.

Admission control is two-layered and enforced before any state is
created: a per-client token bucket (:mod:`repro.service.limits`) and a
bound on concurrently active jobs; both reject with ``429`` and a
``Retry-After``. A draining daemon rejects with ``503``.

Per-point progress streams through the engine's ``on_outcome``
async-submission hook: final outcomes hop from the dispatcher thread
onto the event loop, resolve their flight, and fan out to every
subscribed job's NDJSON event feed.
"""

from __future__ import annotations

import asyncio
import os
import time
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.exec import (
    PointError,
    PointOutcome,
    RetryPolicy,
    SweepPoint,
    get_disk_cache,
    point_key,
    resolve_jobs,
    run_points,
)
from repro.core.runner import ComparedConfig, sweep_results_payload
from repro.core.simulator import SimResult
from repro.service.coalesce import SingleFlight
from repro.service.limits import ClientLimiter
from repro.service.metrics import ServiceMetrics


class AdmissionError(RuntimeError):
    """A rejected submission: carries the HTTP status to send back."""

    def __init__(
        self, status: int, reason: str, retry_after: Optional[float] = None
    ) -> None:
        super().__init__(reason)
        self.status = int(status)
        self.reason = reason
        self.retry_after = retry_after


def result_json(result: SimResult) -> dict:
    """Full JSONable view of one :class:`SimResult`."""
    return {
        "name": result.name,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "ipc": result.ipc,
        "branch_mpki": result.branch_mpki,
        "misfetch_pki": result.misfetch_pki,
        "stats": result.stats,
        "structure": result.structure,
    }


def outcome_json(outcome: PointOutcome) -> dict:
    """Compact JSONable view of one final :class:`PointOutcome`."""
    if outcome.ok:
        return {
            "status": "ok",
            "attempts": outcome.attempts,
            "duration_s": round(outcome.duration, 6),
            "resumed": outcome.resumed,
        }
    err = outcome.error
    return {
        "status": "error",
        "kind": err.kind if err else "exception",
        "message": err.message if err else "",
        "attempts": outcome.attempts,
    }


class Job:
    """One submitted request and its per-point bookkeeping.

    ``points``/``keys`` are positionally aligned; for sweep jobs the
    grid order is ``[baseline, *configs] × workloads`` — exactly the
    grid ``repro-sim sweep`` executes, so the finished job's ``result``
    document is byte-identical to ``sweep --out`` for the same inputs.
    """

    def __init__(
        self,
        job_id: str,
        kind: str,
        points: Sequence[SweepPoint],
        keys: Sequence[str],
        client: str,
        spec: dict,
        configs: Optional[Sequence[Any]] = None,
        workloads: Optional[Sequence[str]] = None,
        baseline_label: Optional[str] = None,
    ) -> None:
        self.id = job_id
        self.kind = kind
        self.points = list(points)
        self.keys = list(keys)
        self.client = client
        self.spec = spec
        self.configs = list(configs or [])
        self.workloads = list(workloads or [])
        self.baseline_label = baseline_label
        self.status = "running"
        self.created = time.time()
        self.finished: Optional[float] = None
        self.coalesced = 0
        self.failed_points = 0
        self.pending = len(self.points)
        self.outcomes: List[Optional[dict]] = [None] * len(self.points)
        self.results: List[Optional[SimResult]] = [None] * len(self.points)
        self.result: Optional[dict] = None
        self.events: List[dict] = []
        self.done = asyncio.Event()

    # -- event feed ---------------------------------------------------------

    def _emit(self, event: str, **fields: Any) -> None:
        self.events.append(
            {"event": event, "ts": round(time.time(), 6), "job": self.id, **fields}
        )

    # -- lifecycle ----------------------------------------------------------

    def point_done(self, index: int, outcome: PointOutcome) -> bool:
        """Record one point's final outcome; ``True`` when it finished
        the job."""
        if self.outcomes[index] is not None:  # pragma: no cover - defensive
            return False
        view = outcome_json(outcome)
        self.outcomes[index] = view
        if outcome.ok:
            self.results[index] = outcome.result
        else:
            self.failed_points += 1
        self.pending -= 1
        point = self.points[index]
        self._emit(
            "point",
            index=index,
            key=self.keys[index][:16],
            config=point.config.label,
            workload=point.workload,
            **view,
        )
        if self.pending:
            return False
        self._finalize()
        return True

    def _finalize(self) -> None:
        self.finished = time.time()
        self.status = "failed" if self.failed_points else "done"
        if not self.failed_points:
            if self.kind == "run":
                self.result = result_json(self.results[0])
            else:
                self.result = self._sweep_payload()
        self._emit(
            "done",
            status=self.status,
            points=len(self.points),
            failed=self.failed_points,
            coalesced=self.coalesced,
            seconds=round(self.finished - self.created, 6),
        )
        self.done.set()

    def _sweep_payload(self) -> dict:
        """The ``sweep --out`` document for a completed sweep grid."""
        nw = len(self.workloads)
        base = self.results[0:nw]
        compared = []
        for ci, config in enumerate(self.configs):
            results = self.results[nw * (ci + 1) : nw * (ci + 2)]
            relative = [r.ipc / b.ipc for r, b in zip(results, base)]
            compared.append(
                ComparedConfig(
                    config=config, results=results, relative_ipc=relative
                )
            )
        return sweep_results_payload(compared, self.baseline_label)

    # -- views --------------------------------------------------------------

    def to_json(self, include_result: bool = True) -> dict:
        doc = {
            "id": self.id,
            "kind": self.kind,
            "status": self.status,
            "client": self.client,
            "created": round(self.created, 6),
            "finished": round(self.finished, 6) if self.finished else None,
            "spec": self.spec,
            "points": len(self.points),
            "pending": self.pending,
            "failed": self.failed_points,
            "coalesced": self.coalesced,
            "outcomes": self.outcomes,
        }
        if include_result:
            doc["result"] = self.result
        return doc


class JobManager:
    """Admission control, the execution queue, and the executor loop."""

    def __init__(
        self,
        *,
        jobs: int = 2,
        queue_limit: int = 16,
        batch_max: int = 256,
        policy: Optional[RetryPolicy] = None,
        batch: Optional[int] = None,
        recycle: int = 0,
        limiter: Optional[ClientLimiter] = None,
        metrics: Optional[ServiceMetrics] = None,
        cache_max_bytes: int = 0,
        history_limit: int = 256,
    ) -> None:
        self.worker_jobs = resolve_jobs(jobs)
        self.queue_limit = int(queue_limit)
        self.batch_max = max(1, int(batch_max))
        self.policy = policy or RetryPolicy()
        self.batch = batch
        self.recycle = int(recycle)
        self.limiter = limiter or ClientLimiter(rate=0.0, burst=1.0)
        self.metrics = metrics or ServiceMetrics()
        self.cache_max_bytes = int(cache_max_bytes)
        self.history_limit = int(history_limit)
        self.singleflight = SingleFlight()
        self.jobs: "OrderedDict[str, Job]" = OrderedDict()
        self.draining = False
        self._pending: Deque = deque()
        self._inflight = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._work: Optional[asyncio.Event] = None
        self._drained: Optional[asyncio.Event] = None
        self._task: Optional[asyncio.Task] = None
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-exec"
        )

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Bind to the running loop and start the executor task."""
        self._loop = asyncio.get_running_loop()
        self._work = asyncio.Event()
        self._drained = asyncio.Event()
        self._task = self._loop.create_task(self._executor_loop())

    def begin_drain(self) -> None:
        """Stop admitting; the executor exits once the queue is dry."""
        self.draining = True
        if self._work is not None:
            self._work.set()

    async def wait_drained(self, timeout: Optional[float] = None) -> bool:
        """Wait for queued + in-flight work to finish; ``False`` on timeout."""
        if self._drained is None:  # pragma: no cover - drain before start
            return True
        try:
            await asyncio.wait_for(self._drained.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    def abort_remaining(self) -> int:
        """Fail every unresolved flight (drain timeout): jobs finalize
        with ``worker-crash``-style errors instead of hanging forever."""

        def aborted(flight):
            return PointOutcome(
                index=0,
                point=flight.point,
                error=PointError(
                    kind="exception",
                    point_key=flight.key,
                    attempts=0,
                    message="service drained before this point completed",
                ),
            )

        self._pending.clear()
        return self.singleflight.abort_all(aborted)

    def shutdown(self) -> None:
        if self._task is not None:
            self._task.cancel()
        self._pool.shutdown(wait=False)

    # -- gauges -------------------------------------------------------------

    @property
    def active_jobs(self) -> int:
        return sum(1 for job in self.jobs.values() if job.status == "running")

    @property
    def queue_depth(self) -> int:
        return len(self._pending) + self._inflight

    # -- admission + submission ---------------------------------------------

    def _admit(self, client: str) -> None:
        if self.draining:
            self.metrics.bump("jobs_rejected_draining")
            raise AdmissionError(503, "service is draining")
        ok, retry_after = self.limiter.admit(client)
        if not ok:
            self.metrics.bump("jobs_rejected_rate_limited")
            raise AdmissionError(
                429, f"rate limit exceeded for client {client!r}", retry_after
            )
        if self.active_jobs >= self.queue_limit:
            self.metrics.bump("jobs_rejected_queue_full")
            raise AdmissionError(
                429,
                f"job queue full ({self.active_jobs} active, "
                f"limit {self.queue_limit})",
                retry_after=2.0,
            )

    def submit(
        self,
        kind: str,
        points: Sequence[SweepPoint],
        client: str,
        spec: dict,
        configs: Optional[Sequence[Any]] = None,
        workloads: Optional[Sequence[str]] = None,
        baseline_label: Optional[str] = None,
    ) -> Job:
        """Admit one job: coalesce its points and queue the leaders.

        Raises :class:`AdmissionError` when the daemon is draining, the
        client is over its rate limit, or the job queue is full.
        """
        self._admit(client)
        keys = [point_key(point) for point in points]
        job = Job(
            job_id=f"j{os.urandom(6).hex()}",
            kind=kind,
            points=points,
            keys=keys,
            client=client,
            spec=spec,
            configs=configs,
            workloads=workloads,
            baseline_label=baseline_label,
        )
        self.jobs[job.id] = job
        self._trim_history()
        self.metrics.bump("jobs_submitted")
        self.metrics.bump("points_requested", len(points))
        for index, (key, point) in enumerate(zip(keys, points)):
            flight, leader = self.singleflight.admit(key, point)
            flight.subscribe(self._deliver, (job, index))
            if leader:
                self._pending.append(flight)
                self.metrics.bump("points_scheduled")
            else:
                job.coalesced += 1
                self.metrics.bump("points_coalesced")
        job._emit(
            "submitted",
            kind=kind,
            points=len(points),
            coalesced=job.coalesced,
            client=client,
        )
        if self._work is not None:
            self._work.set()
        return job

    def get(self, job_id: str) -> Optional[Job]:
        return self.jobs.get(job_id)

    def _trim_history(self) -> None:
        """Drop the oldest *finished* jobs beyond the history bound."""
        excess = len(self.jobs) - self.history_limit
        if excess <= 0:
            return
        for job_id in [
            jid for jid, job in self.jobs.items() if job.status != "running"
        ][:excess]:
            del self.jobs[job_id]

    # -- execution ----------------------------------------------------------

    def _deliver(self, context: Tuple[Job, int], outcome: PointOutcome) -> None:
        job, index = context
        if job.point_done(index, outcome):
            self.metrics.bump(
                "jobs_failed" if job.status == "failed" else "jobs_completed"
            )

    def _resolve_flight(self, key: str, outcome: PointOutcome) -> None:
        flight = self.singleflight.get(key)
        if flight is None or flight.resolved:
            return
        self.metrics.bump("points_ok" if outcome.ok else "points_failed")
        self.singleflight.resolve(key, outcome)

    def _run_batch(self, flights):
        """Execute one batch on the engine pool (worker thread).

        The ``on_outcome`` hook hops each final outcome onto the event
        loop as it streams in, so job event feeds update while the
        batch is still running.
        """
        keys = [flight.key for flight in flights]

        def hook(outcome: PointOutcome) -> None:
            try:
                self._loop.call_soon_threadsafe(
                    self._resolve_flight, keys[outcome.index], outcome
                )
            except RuntimeError:  # pragma: no cover - loop closed mid-drain
                pass

        return run_points(
            [flight.point for flight in flights],
            jobs=self.worker_jobs,
            strict=False,
            policy=self.policy,
            batch=self.batch,
            recycle=self.recycle,
            on_outcome=hook,
        )

    async def _executor_loop(self) -> None:
        """Drain the leader queue in batches until told to drain."""
        while True:
            await self._work.wait()
            self._work.clear()
            while self._pending:
                batch = [
                    self._pending.popleft()
                    for _ in range(min(len(self._pending), self.batch_max))
                ]
                self._inflight = len(batch)
                try:
                    report = await self._loop.run_in_executor(
                        self._pool, self._run_batch, batch
                    )
                finally:
                    self._inflight = 0
                self.metrics.bump("batches")
                self.metrics.fold_resilience(report.counters)
                # Safety net: resolve anything the streaming hook missed
                # (it is best-effort by design).
                for flight, outcome in zip(batch, report.outcomes):
                    self._resolve_flight(flight.key, outcome)
                await self._maybe_prune()
            if self.draining:
                break
        self._drained.set()

    async def _maybe_prune(self) -> None:
        """Enforce the result-store byte budget between batches."""
        disk = get_disk_cache()
        if not self.cache_max_bytes or disk is None:
            return
        pruned = await self._loop.run_in_executor(
            self._pool, disk.prune, self.cache_max_bytes
        )
        if pruned["evicted"]:
            self.metrics.bump("cache_evicted", pruned["evicted"])
            self.metrics.bump("cache_evicted_bytes", pruned["evicted_bytes"])
