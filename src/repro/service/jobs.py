"""Job lifecycle for the service daemon: admission → batches → results.

A *job* is one client request — a single point (``POST /v1/run``) or a
config × workload sweep grid (``POST /v1/sweep``). Jobs never execute
anything themselves: every point is admitted into the single-flight
table (:mod:`repro.service.coalesce`) under its content-hash cache key,
and only flight *leaders* reach the execution queue. The executor loop
drains that queue in batches onto the engine's resilient pool —
``run_points(strict=False)`` with the daemon's worker count — so
concurrent jobs share one warm pool and one pass over any shared
points, and an injected worker crash surfaces as a classified per-point
error in the job report instead of a dead daemon.

Admission control is two-layered and enforced before any state is
created: a per-client token bucket (:mod:`repro.service.limits`) and a
bound on concurrently active jobs; both reject with ``429`` and a
``Retry-After``. A draining daemon rejects with ``503``.

Per-point progress streams through the engine's ``on_outcome``
async-submission hook: final outcomes hop from the dispatcher thread
onto the event loop, resolve their flight, and fan out to every
subscribed job's NDJSON event feed.

Durability and reliability plumbing (see ``docs/service.md``):

* every accepted job is write-ahead journaled in the
  :class:`~repro.service.store.JobStore` (submit → per-point outcome →
  terminal state) so a crashed daemon recovers it on restart;
* per-job deadlines (``X-Deadline-Ms`` / spec ``timeout_s``) ride on
  flights and propagate into the engine's ``run_points(deadline=...)``
  — an already-expired flight fails at dequeue without dispatching a
  worker;
* a :class:`~repro.service.breaker.PoisonBreaker` fails fast on points
  that crash-looped across jobs;
* finished jobs are garbage-collected after ``job_ttl`` seconds so the
  recovered job store survives millions of entries.
"""

from __future__ import annotations

import asyncio
import os
import sys
import time
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.exec import (
    DEADLINE_MESSAGE,
    PointError,
    PointOutcome,
    RetryPolicy,
    SweepPoint,
    get_disk_cache,
    point_key,
    resolve_jobs,
    run_points,
)
from repro.core.runner import ComparedConfig, sweep_results_payload
from repro.core.simulator import SimResult
from repro.service.breaker import PoisonBreaker
from repro.service.coalesce import Flight, SingleFlight
from repro.service.limits import ClientLimiter
from repro.service.metrics import ServiceMetrics
from repro.service.store import JobStore


class AdmissionError(RuntimeError):
    """A rejected submission: carries the HTTP status to send back."""

    def __init__(
        self, status: int, reason: str, retry_after: Optional[float] = None
    ) -> None:
        super().__init__(reason)
        self.status = int(status)
        self.reason = reason
        self.retry_after = retry_after


def result_json(result: SimResult) -> dict:
    """Full JSONable view of one :class:`SimResult`."""
    return {
        "name": result.name,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "ipc": result.ipc,
        "branch_mpki": result.branch_mpki,
        "misfetch_pki": result.misfetch_pki,
        "stats": result.stats,
        "structure": result.structure,
    }


def outcome_json(outcome: PointOutcome) -> dict:
    """Compact JSONable view of one final :class:`PointOutcome`."""
    if outcome.ok:
        return {
            "status": "ok",
            "attempts": outcome.attempts,
            "duration_s": round(outcome.duration, 6),
            "resumed": outcome.resumed,
        }
    err = outcome.error
    return {
        "status": "error",
        "kind": err.kind if err else "exception",
        "message": err.message if err else "",
        "attempts": outcome.attempts,
    }


class Job:
    """One submitted request and its per-point bookkeeping.

    ``points``/``keys`` are positionally aligned; for sweep jobs the
    grid order is ``[baseline, *configs] × workloads`` — exactly the
    grid ``repro-sim sweep`` executes, so the finished job's ``result``
    document is byte-identical to ``sweep --out`` for the same inputs.
    """

    def __init__(
        self,
        job_id: str,
        kind: str,
        points: Sequence[SweepPoint],
        keys: Sequence[str],
        client: str,
        spec: dict,
        configs: Optional[Sequence[Any]] = None,
        workloads: Optional[Sequence[str]] = None,
        baseline_label: Optional[str] = None,
        deadline: Optional[float] = None,
        recovered: bool = False,
    ) -> None:
        self.id = job_id
        self.kind = kind
        self.points = list(points)
        self.keys = list(keys)
        self.client = client
        self.spec = spec
        self.configs = list(configs or [])
        self.workloads = list(workloads or [])
        self.baseline_label = baseline_label
        #: Absolute ``time.monotonic()`` instant the job must finish by
        #: (``None`` = unbounded); propagated down to ``run_points``.
        self.deadline = deadline
        #: ``True`` for jobs replayed from the write-ahead store after a
        #: daemon restart (both finished and re-executed ones).
        self.recovered = recovered
        self.status = "running"
        self.created = time.time()
        self.finished: Optional[float] = None
        self.coalesced = 0
        self.failed_points = 0
        self.pending = len(self.points)
        self.outcomes: List[Optional[dict]] = [None] * len(self.points)
        self.results: List[Optional[SimResult]] = [None] * len(self.points)
        self.result: Optional[dict] = None
        self.events: List[dict] = []
        self.done = asyncio.Event()

    # -- event feed ---------------------------------------------------------

    def _emit(self, event: str, **fields: Any) -> None:
        self.events.append(
            {"event": event, "ts": round(time.time(), 6), "job": self.id, **fields}
        )

    # -- lifecycle ----------------------------------------------------------

    def point_done(self, index: int, outcome: PointOutcome) -> bool:
        """Record one point's final outcome; ``True`` when it finished
        the job."""
        if self.outcomes[index] is not None:  # pragma: no cover - defensive
            return False
        view = outcome_json(outcome)
        self.outcomes[index] = view
        if outcome.ok:
            self.results[index] = outcome.result
        else:
            self.failed_points += 1
        self.pending -= 1
        point = self.points[index]
        self._emit(
            "point",
            index=index,
            key=self.keys[index][:16],
            config=point.config.label,
            workload=point.workload,
            **view,
        )
        if self.pending:
            return False
        self._finalize()
        return True

    def _finalize(self) -> None:
        self.finished = time.time()
        self.status = "failed" if self.failed_points else "done"
        if not self.failed_points:
            if self.kind == "run":
                self.result = result_json(self.results[0])
            else:
                self.result = self._sweep_payload()
        self._emit(
            "done",
            status=self.status,
            points=len(self.points),
            failed=self.failed_points,
            coalesced=self.coalesced,
            seconds=round(self.finished - self.created, 6),
        )
        self.done.set()

    def _sweep_payload(self) -> dict:
        """The ``sweep --out`` document for a completed sweep grid."""
        nw = len(self.workloads)
        base = self.results[0:nw]
        compared = []
        for ci, config in enumerate(self.configs):
            results = self.results[nw * (ci + 1) : nw * (ci + 2)]
            relative = [r.ipc / b.ipc for r, b in zip(results, base)]
            compared.append(
                ComparedConfig(
                    config=config, results=results, relative_ipc=relative
                )
            )
        return sweep_results_payload(compared, self.baseline_label)

    # -- views --------------------------------------------------------------

    def to_json(self, include_result: bool = True) -> dict:
        doc = {
            "id": self.id,
            "kind": self.kind,
            "status": self.status,
            "client": self.client,
            "created": round(self.created, 6),
            "finished": round(self.finished, 6) if self.finished else None,
            "spec": self.spec,
            "points": len(self.points),
            "pending": self.pending,
            "failed": self.failed_points,
            "coalesced": self.coalesced,
            "recovered": self.recovered,
            "outcomes": self.outcomes,
        }
        if include_result:
            doc["result"] = self.result
        return doc

    def summary_json(self) -> dict:
        """Compact row for ``GET /v1/jobs`` (no outcomes, no result)."""
        return {
            "id": self.id,
            "kind": self.kind,
            "status": self.status,
            "client": self.client,
            "created": round(self.created, 6),
            "finished": round(self.finished, 6) if self.finished else None,
            "points": len(self.points),
            "pending": self.pending,
            "failed": self.failed_points,
            "recovered": self.recovered,
        }


class JobManager:
    """Admission control, the execution queue, and the executor loop."""

    def __init__(
        self,
        *,
        jobs: int = 2,
        queue_limit: int = 16,
        batch_max: int = 256,
        policy: Optional[RetryPolicy] = None,
        batch: Optional[int] = None,
        recycle: int = 0,
        limiter: Optional[ClientLimiter] = None,
        metrics: Optional[ServiceMetrics] = None,
        cache_max_bytes: int = 0,
        history_limit: int = 256,
        store: Optional[JobStore] = None,
        breaker: Optional[PoisonBreaker] = None,
        job_ttl: float = 0.0,
        dispatch: Optional[str] = None,
    ) -> None:
        self.worker_jobs = resolve_jobs(jobs)
        #: "host:port" of a dist coordinator; when set, batches drain onto
        #: the remote worker fleet instead of the local process pool.
        self.dispatch = dispatch
        self.queue_limit = int(queue_limit)
        self.batch_max = max(1, int(batch_max))
        self.policy = policy or RetryPolicy()
        self.batch = batch
        self.recycle = int(recycle)
        self.limiter = limiter or ClientLimiter(rate=0.0, burst=1.0)
        self.metrics = metrics or ServiceMetrics()
        self.cache_max_bytes = int(cache_max_bytes)
        self.history_limit = int(history_limit)
        self.store = store
        # `is not None`, not `or`: an empty PoisonBreaker is falsy
        # (it has __len__), and it must still be the one we were given.
        self.breaker = breaker if breaker is not None else PoisonBreaker()
        self.job_ttl = float(job_ttl)
        self.singleflight = SingleFlight()
        self.jobs: "OrderedDict[str, Job]" = OrderedDict()
        self.draining = False
        #: Wall-clock stamp of the executor's most recent sign of life
        #: (loop iteration or batch completion); readiness reports its age.
        self.last_heartbeat = time.time()
        self._pending: Deque = deque()
        self._inflight = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._work: Optional[asyncio.Event] = None
        self._drained: Optional[asyncio.Event] = None
        self._task: Optional[asyncio.Task] = None
        self._gc_task: Optional[asyncio.Task] = None
        self._pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-exec"
        )

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        """Bind to the running loop and start the executor task."""
        self._loop = asyncio.get_running_loop()
        self._work = asyncio.Event()
        self._drained = asyncio.Event()
        self.last_heartbeat = time.time()
        self._task = self._loop.create_task(self._executor_loop())
        if self.job_ttl > 0:
            self._gc_task = self._loop.create_task(self._gc_loop())

    def begin_drain(self) -> None:
        """Stop admitting; the executor exits once the queue is dry."""
        self.draining = True
        if self._work is not None:
            self._work.set()

    async def wait_drained(self, timeout: Optional[float] = None) -> bool:
        """Wait for queued + in-flight work to finish; ``False`` on timeout."""
        if self._drained is None:  # pragma: no cover - drain before start
            return True
        try:
            await asyncio.wait_for(self._drained.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    def abort_remaining(self) -> int:
        """Fail every unresolved flight (drain timeout): jobs finalize
        with ``worker-crash``-style errors instead of hanging forever."""

        def aborted(flight):
            return PointOutcome(
                index=0,
                point=flight.point,
                error=PointError(
                    kind="exception",
                    point_key=flight.key,
                    attempts=0,
                    message="service drained before this point completed",
                ),
            )

        self._pending.clear()
        return self.singleflight.abort_all(aborted)

    def shutdown(self) -> None:
        if self._task is not None:
            self._task.cancel()
        if self._gc_task is not None:
            self._gc_task.cancel()
        self._pool.shutdown(wait=False)

    # -- gauges -------------------------------------------------------------

    @property
    def active_jobs(self) -> int:
        return sum(1 for job in self.jobs.values() if job.status == "running")

    @property
    def queue_depth(self) -> int:
        return len(self._pending) + self._inflight

    @property
    def degraded(self) -> bool:
        """Storage-fault flag: the job store lost writability."""
        return self.store is not None and self.store.degraded

    @property
    def executor_alive(self) -> bool:
        """``False`` once the executor task died or was never started."""
        return self._task is not None and not self._task.done()

    # -- admission + submission ---------------------------------------------

    def _admit(self, client: str) -> None:
        if self.draining:
            self.metrics.bump("jobs_rejected_draining")
            raise AdmissionError(503, "service is draining")
        ok, retry_after = self.limiter.admit(client)
        if not ok:
            self.metrics.bump("jobs_rejected_rate_limited")
            raise AdmissionError(
                429, f"rate limit exceeded for client {client!r}", retry_after
            )
        if self.active_jobs >= self.queue_limit:
            self.metrics.bump("jobs_rejected_queue_full")
            raise AdmissionError(
                429,
                f"job queue full ({self.active_jobs} active, "
                f"limit {self.queue_limit})",
                retry_after=2.0,
            )

    def submit(
        self,
        kind: str,
        points: Sequence[SweepPoint],
        client: str,
        spec: dict,
        configs: Optional[Sequence[Any]] = None,
        workloads: Optional[Sequence[str]] = None,
        baseline_label: Optional[str] = None,
        deadline_s: Optional[float] = None,
        *,
        job_id: Optional[str] = None,
        created: Optional[float] = None,
        recovered: bool = False,
    ) -> Job:
        """Admit one job: coalesce its points and queue the leaders.

        Raises :class:`AdmissionError` when the daemon is draining, the
        client is over its rate limit, or the job queue is full.
        *deadline_s* is a relative budget in seconds, converted to an
        absolute monotonic deadline at admission. Recovery replays call
        with ``recovered=True`` (plus the original ``job_id``/*created*)
        which bypasses admission control and re-journaling — the job was
        already admitted, journaled and billed before the crash.
        """
        if not recovered:
            self._admit(client)
        keys = [point_key(point) for point in points]
        deadline = (
            time.monotonic() + max(0.0, float(deadline_s))
            if deadline_s is not None
            else None
        )
        job = Job(
            job_id=job_id or f"j{os.urandom(6).hex()}",
            kind=kind,
            points=points,
            keys=keys,
            client=client,
            spec=spec,
            configs=configs,
            workloads=workloads,
            baseline_label=baseline_label,
            deadline=deadline,
            recovered=recovered,
        )
        if created is not None:
            job.created = created
        self.jobs[job.id] = job
        self._trim_history()
        self.metrics.bump("jobs_recovered" if recovered else "jobs_submitted")
        self.metrics.bump("points_requested", len(points))
        if self.store is not None and not recovered:
            self.store.record_submit(job)
        fast_fails: List[Tuple[Flight, PointError]] = []
        for index, (key, point) in enumerate(zip(keys, points)):
            flight, leader = self.singleflight.admit(key, point)
            flight.subscribe(self._deliver, (job, index))
            if leader:
                flight.deadline = deadline
                blocked = self.breaker.check(key)
                if blocked is not None:
                    # Poison point with an open breaker: resolve the
                    # fresh flight immediately with the cached error —
                    # no queue entry, no worker. Deferred below so the
                    # "submitted" event still leads the job's feed.
                    fast_fails.append((flight, blocked))
                    self.metrics.bump("points_fast_failed")
                else:
                    self._pending.append(flight)
                    self.metrics.bump("points_scheduled")
            else:
                flight.widen_deadline(deadline)
                job.coalesced += 1
                self.metrics.bump("points_coalesced")
        job._emit(
            "submitted",
            kind=kind,
            points=len(points),
            coalesced=job.coalesced,
            client=client,
        )
        for flight, error in fast_fails:
            self._resolve_flight(
                flight.key,
                PointOutcome(index=0, point=flight.point, error=error),
                poison_evidence=False,
            )
        if self._work is not None:
            self._work.set()
        return job

    def adopt(self, job: Job) -> None:
        """Register a pre-built (recovered, already finished) job.

        Recovery replays journals oldest-first into an empty manager, so
        plain insertion preserves submission order.
        """
        self.jobs[job.id] = job
        self.metrics.bump("jobs_recovered")
        self._trim_history()

    def get(self, job_id: str) -> Optional[Job]:
        return self.jobs.get(job_id)

    def list_jobs(
        self,
        state: Optional[str] = None,
        after: Optional[str] = None,
        limit: int = 50,
    ) -> Tuple[List[Job], Optional[str]]:
        """One page of jobs, oldest first: ``(jobs, next_after_cursor)``.

        *state* filters on job status; *after* is the last job id of the
        previous page (jobs admitted before it are skipped). The cursor
        survives eviction of the cursor job itself: ids embed nothing,
        so a vanished cursor simply restarts from the oldest survivor —
        acceptable for a monotone listing.
        """
        limit = max(1, min(int(limit), 500))
        rows: List[Job] = []
        skipping = after is not None and after in self.jobs
        for jid, job in self.jobs.items():
            if skipping:
                if jid == after:
                    skipping = False
                continue
            if state is not None and job.status != state:
                continue
            rows.append(job)
            if len(rows) > limit:
                break
        next_after = None
        if len(rows) > limit:
            rows = rows[:limit]
            next_after = rows[-1].id
        return rows, next_after

    def _trim_history(self) -> None:
        """Drop the oldest *finished* jobs beyond the history bound."""
        excess = len(self.jobs) - self.history_limit
        if excess <= 0:
            return
        evicted = 0
        for job_id in [
            jid for jid, job in self.jobs.items() if job.status != "running"
        ][:excess]:
            del self.jobs[job_id]
            if self.store is not None:
                self.store.evict(job_id)
            evicted += 1
        if evicted:
            self.metrics.bump("jobs_evicted", evicted)

    def gc_jobs(self, now: Optional[float] = None) -> int:
        """Evict finished jobs older than ``job_ttl`` (memory + store)."""
        if self.job_ttl <= 0:
            return 0
        now = time.time() if now is None else now
        evicted = 0
        for jid, job in list(self.jobs.items()):
            if (
                job.status != "running"
                and job.finished is not None
                and now - job.finished >= self.job_ttl
            ):
                del self.jobs[jid]
                if self.store is not None:
                    self.store.evict(jid)
                evicted += 1
        if evicted:
            self.metrics.bump("jobs_evicted", evicted)
        return evicted

    async def _gc_loop(self) -> None:
        interval = max(1.0, min(self.job_ttl / 4.0, 30.0))
        while True:
            await asyncio.sleep(interval)
            self.gc_jobs()

    # -- execution ----------------------------------------------------------

    def _deliver(self, context: Tuple[Job, int], outcome: PointOutcome) -> None:
        job, index = context
        fresh = job.outcomes[index] is None
        finished = job.point_done(index, outcome)
        if self.store is not None and fresh and job.outcomes[index] is not None:
            self.store.record_point(job.id, index, job.outcomes[index])
        if finished:
            self.metrics.bump(
                "jobs_failed" if job.status == "failed" else "jobs_completed"
            )
            if self.store is not None:
                self.store.record_done(job)

    def _resolve_flight(
        self,
        key: str,
        outcome: PointOutcome,
        poison_evidence: bool = True,
    ) -> None:
        flight = self.singleflight.get(key)
        if flight is None or flight.resolved:
            return
        if poison_evidence:
            self.breaker.record(key, outcome)
        self.metrics.bump("points_ok" if outcome.ok else "points_failed")
        self.singleflight.resolve(key, outcome)

    def _expire_flight(self, flight: Flight) -> None:
        """Fail one flight whose deadline passed before dispatch.

        The required semantics of the deadline satellite: an expired
        deadline at dequeue time fails the point with a classified
        ``deadline-exceeded`` timeout **without dispatching any worker**
        (and without counting as poison evidence — the budget is the
        job's fault, not the point's).
        """
        self.metrics.bump("points_deadline_rejected")
        self._resolve_flight(
            flight.key,
            PointOutcome(
                index=0,
                point=flight.point,
                error=PointError(
                    kind="timeout",
                    point_key=flight.key,
                    attempts=0,
                    message=f"{DEADLINE_MESSAGE}: job deadline passed "
                    "before this point was dispatched",
                ),
            ),
            poison_evidence=False,
        )

    def _orphan_batch(self, flights, exc: BaseException) -> None:
        """Resolve a batch whose execution died without outcomes.

        The leader of each flight is gone (``run_points`` raised instead
        of returning a report); without this, every subscriber would
        wait forever. Twins receive the classified error and the flight
        retires — the orphaned-flight regression path.
        """
        self.metrics.bump("orphaned_flights", len(flights))
        print(
            f"repro-sim serve: batch execution died ({exc!r}); failing "
            f"{len(flights)} orphaned flight(s)",
            file=sys.stderr,
            flush=True,
        )
        for flight in flights:
            self._resolve_flight(
                flight.key,
                PointOutcome(
                    index=0,
                    point=flight.point,
                    error=PointError(
                        kind="exception",
                        point_key=flight.key,
                        attempts=0,
                        message=f"flight leader died: {exc}",
                    ),
                ),
                poison_evidence=False,
            )

    def _run_batch(self, flights, deadline: Optional[float] = None):
        """Execute one batch on the engine pool (worker thread).

        The ``on_outcome`` hook hops each final outcome onto the event
        loop as it streams in, so job event feeds update while the
        batch is still running. *deadline* (shared by every flight in
        the group) propagates into the engine's two-layer timeout
        machinery: past it, running workers are killed and their points
        classified, queued points fail without dispatch.
        """
        keys = [flight.key for flight in flights]

        def hook(outcome: PointOutcome) -> None:
            try:
                self._loop.call_soon_threadsafe(
                    self._resolve_flight, keys[outcome.index], outcome
                )
            except RuntimeError:  # pragma: no cover - loop closed mid-drain
                pass

        return run_points(
            [flight.point for flight in flights],
            jobs=self.worker_jobs,
            strict=False,
            policy=self.policy,
            batch=self.batch,
            recycle=self.recycle,
            on_outcome=hook,
            deadline=deadline,
            dispatch=self.dispatch,
        )

    def _collect_groups(self):
        """Pop one batch and split it into dispatchable deadline groups.

        Returns ``(groups, expired)``: *groups* maps a shared deadline
        (``None`` = unbounded, the common case — one group) to its
        flights; *expired* flights never reach a group.
        """
        batch = [
            self._pending.popleft()
            for _ in range(min(len(self._pending), self.batch_max))
        ]
        now = time.monotonic()
        groups: "OrderedDict[Optional[float], List[Flight]]" = OrderedDict()
        expired: List[Flight] = []
        for flight in batch:
            if flight.deadline is not None and now >= flight.deadline:
                expired.append(flight)
            else:
                groups.setdefault(flight.deadline, []).append(flight)
        return groups, expired

    async def _executor_loop(self) -> None:
        """Drain the leader queue in batches until told to drain.

        Batch failures never kill this task: a ``run_points`` that
        raises orphans its flights, which are resolved with classified
        errors so subscribers always get a terminal answer and the next
        batch still runs.
        """
        while True:
            await self._work.wait()
            self._work.clear()
            self.last_heartbeat = time.time()
            while self._pending:
                groups, expired = self._collect_groups()
                for flight in expired:
                    self._expire_flight(flight)
                for deadline, flights in groups.items():
                    self._inflight = len(flights)
                    try:
                        report = await self._loop.run_in_executor(
                            self._pool, self._run_batch, flights, deadline
                        )
                    except Exception as exc:
                        self._orphan_batch(flights, exc)
                        continue
                    finally:
                        self._inflight = 0
                        self.last_heartbeat = time.time()
                    self.metrics.bump("batches")
                    self.metrics.fold_resilience(report.counters)
                    # Safety net: resolve anything the streaming hook
                    # missed (it is best-effort by design).
                    for flight, outcome in zip(flights, report.outcomes):
                        self._resolve_flight(flight.key, outcome)
                await self._maybe_prune()
            if self.draining:
                break
        self._drained.set()

    async def _maybe_prune(self) -> None:
        """Enforce the result-store byte budget between batches."""
        disk = get_disk_cache()
        if not self.cache_max_bytes or disk is None:
            return
        pruned = await self._loop.run_in_executor(
            self._pool, disk.prune, self.cache_max_bytes
        )
        if pruned["evicted"]:
            self.metrics.bump("cache_evicted", pruned["evicted"])
            self.metrics.bump("cache_evicted_bytes", pruned["evicted_bytes"])
