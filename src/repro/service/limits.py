"""Per-client token-bucket rate limiting for the service daemon.

Each client (the ``X-Client-Id`` header, falling back to the peer
address) owns one :class:`TokenBucket`: *burst* tokens of capacity,
refilled continuously at *rate* tokens/second. A submission costs one
token; an empty bucket yields a ``429`` with a ``Retry-After`` telling
the client exactly when the next token lands. ``rate <= 0`` disables
limiting entirely (the single-user default).

The bucket map is bounded: when more than ``max_clients`` distinct
clients have been seen, the least-recently-active bucket is dropped —
an idle client's bucket refills to full long before it matters again,
so eviction never penalizes anyone.

Time is injected (``clock``) so tests are deterministic.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Tuple


class TokenBucket:
    """A continuously refilling token bucket."""

    def __init__(self, rate: float, burst: float, now: float = 0.0) -> None:
        self.rate = float(rate)
        self.burst = max(1.0, float(burst))
        self.tokens = self.burst
        self.updated = now

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = now

    def take(self, now: float) -> Tuple[bool, float]:
        """Spend one token; ``(False, retry_after_seconds)`` when empty."""
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True, 0.0
        if self.rate <= 0:  # pragma: no cover - guarded by ClientLimiter
            return False, float("inf")
        return False, (1.0 - self.tokens) / self.rate


class ClientLimiter:
    """Bounded map of per-client :class:`TokenBucket` instances."""

    def __init__(
        self,
        rate: float,
        burst: float,
        max_clients: int = 4096,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.max_clients = int(max_clients)
        self._clock = clock or time.monotonic
        self._buckets: Dict[str, TokenBucket] = {}

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def admit(self, client: str) -> Tuple[bool, float]:
        """``(True, 0.0)`` to admit, else ``(False, retry_after_seconds)``."""
        if not self.enabled:
            return True, 0.0
        now = self._clock()
        bucket = self._buckets.pop(client, None)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, now)
        # Re-insert to keep dict order = recency (LRU eviction below).
        self._buckets[client] = bucket
        if len(self._buckets) > self.max_clients:
            oldest = next(iter(self._buckets))
            if oldest != client:
                del self._buckets[oldest]
        ok, retry_after = bucket.take(now)
        return ok, retry_after
