"""Service-level metrics: own counters plus engine/cache rollups.

``/v1/metrics`` renders three groups:

* ``service`` — the daemon's own counters (jobs admitted/rejected,
  points requested/executed/coalesced, batches, drain state);
* ``resilience`` — the fold of every batch's
  :class:`~repro.core.exec.resilience.SweepReport` counters (retries,
  worker crashes, timeouts, ...), i.e. the chaos ledger of everything
  the engine absorbed on the service's behalf;
* ``cache`` — the live :class:`~repro.core.exec.diskcache.DiskCache`
  hit/miss/eviction counters.

All mutation happens on the event-loop thread.
"""

from __future__ import annotations

import time
from typing import Dict, Optional


class ServiceMetrics:
    """Monotonic counters + gauges for ``/v1/metrics`` and ``/v1/healthz``."""

    #: Counters that always render, even at zero, so dashboards and the
    #: smoke tests can rely on the keys existing.
    SERVICE_KEYS = (
        "jobs_submitted",
        "jobs_completed",
        "jobs_failed",
        "jobs_recovered",
        "jobs_evicted",
        "jobs_rejected_queue_full",
        "jobs_rejected_rate_limited",
        "jobs_rejected_draining",
        "points_requested",
        "points_scheduled",
        "points_coalesced",
        "points_ok",
        "points_failed",
        "points_fast_failed",
        "points_deadline_rejected",
        "orphaned_flights",
        "batches",
        "events_streamed",
        "cache_evicted",
        "cache_evicted_bytes",
    )

    def __init__(self) -> None:
        self.started = time.time()
        self.service: Dict[str, int] = {key: 0 for key in self.SERVICE_KEYS}
        self.resilience: Dict[str, int] = {}

    def bump(self, name: str, by: int = 1) -> None:
        self.service[name] = self.service.get(name, 0) + int(by)

    def fold_resilience(self, counters: Dict[str, int]) -> None:
        """Accumulate one batch's SweepReport counters."""
        for key, value in counters.items():
            self.resilience[key] = self.resilience.get(key, 0) + int(value)

    def snapshot(
        self,
        cache_counters: Optional[Dict[str, int]] = None,
        dist_counters: Optional[Dict[str, int]] = None,
        **gauges,
    ) -> dict:
        """Metrics document. *dist_counters* (the coordinator's fleet
        snapshot: workers live/lost, steals, shard bytes, fetch cache
        hits, ...) adds a ``dist`` group — present only when the daemon
        runs with ``--dist-listen``, so local-only deployments keep the
        historical shape byte-for-byte."""
        doc = {
            "schema": 1,
            "uptime_s": round(time.time() - self.started, 3),
            "service": {**self.service, **gauges},
            "resilience": dict(self.resilience),
            "cache": dict(cache_counters or {}),
        }
        if dist_counters is not None:
            doc["dist"] = dict(dist_counters)
        return doc
