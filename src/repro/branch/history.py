"""Global branch history with incrementally folded views.

The hashed perceptron and the indirect target predictor index their tables
with hashes of (PC, recent global history). Folding a long history into a
table-index-sized value on every prediction would be O(history length);
:class:`FoldedRegister` keeps the fold up to date in O(1) per history
update, the same circular-shift-register trick TAGE uses.
"""

from __future__ import annotations

from typing import List

#: Maximum global history length kept (bits).
MAX_HISTORY = 256

_HISTORY_MASK = (1 << MAX_HISTORY) - 1


class FoldedRegister:
    """Folds the most recent *length* history bits into *width* bits.

    Maintained incrementally: :meth:`push` must be called with the new
    history bit and the bit that just fell off position ``length - 1``.
    """

    __slots__ = ("length", "width", "value", "_out_pos")

    def __init__(self, length: int, width: int) -> None:
        if width <= 0:
            raise ValueError("width must be positive")
        if length < 0:
            raise ValueError("length must be non-negative")
        self.length = length
        self.width = width
        self.value = 0
        self._out_pos = length % width

    def push(self, new_bit: int, outgoing_bit: int) -> None:
        """Advance the fold by one history bit (TAGE CSR update: shift in
        the new bit, cancel the outgoing bit at ``length % width``, wrap
        the overflow bit back with XOR)."""
        if self.length == 0:
            return
        v = (self.value << 1) | (new_bit & 1)
        v ^= (outgoing_bit & 1) << self._out_pos
        v ^= v >> self.width
        self.value = v & ((1 << self.width) - 1)

    def rebuild(self, history: int) -> None:
        """Recompute the fold from scratch (oldest bit first)."""
        self.value = 0
        for i in range(self.length - 1, -1, -1):
            bit = (history >> i) & 1
            v = (self.value << 1) | bit
            v ^= v >> self.width
            self.value = v & ((1 << self.width) - 1)


class GlobalHistory:
    """Global taken/not-taken history shared by the predictors.

    Following common practice (and Ishii et al.'s discussion the paper
    cites), the history is updated with the outcome of conditional
    branches and with a constant '1' for taken unconditional branches, so
    indirect-dispatch context is visible to the predictor.
    """

    __slots__ = ("bits", "_folds")

    def __init__(self) -> None:
        self.bits = 0
        self._folds: List[FoldedRegister] = []

    def register_fold(self, length: int, width: int) -> FoldedRegister:
        """Create a folded view kept in sync with this history."""
        if length > MAX_HISTORY:
            raise ValueError(f"length {length} exceeds MAX_HISTORY {MAX_HISTORY}")
        fold = FoldedRegister(length, width)
        fold.rebuild(self.bits)
        self._folds.append(fold)
        return fold

    def push(self, taken: bool) -> None:
        """Shift one outcome bit into the history."""
        bit = 1 if taken else 0
        for fold in self._folds:
            if fold.length:
                outgoing = (self.bits >> (fold.length - 1)) & 1
                fold.push(bit, outgoing)
        self.bits = ((self.bits << 1) | bit) & _HISTORY_MASK

    def value(self, length: int) -> int:
        """The most recent *length* history bits as an int."""
        return self.bits & ((1 << length) - 1)
