"""Branch prediction substrate: direction, indirect target, RAS, history."""

from repro.branch.history import MAX_HISTORY, FoldedRegister, GlobalHistory
from repro.branch.indirect import IndirectPredictor, ReturnAddressStack
from repro.branch.perceptron import HISTORY_LENGTHS, HashedPerceptron

__all__ = [
    "FoldedRegister",
    "GlobalHistory",
    "HISTORY_LENGTHS",
    "HashedPerceptron",
    "IndirectPredictor",
    "MAX_HISTORY",
    "ReturnAddressStack",
]
