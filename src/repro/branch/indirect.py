"""Indirect target predictor and return address stack.

Table 1 specifies a 4K-entry gshare-like indirect target predictor and a
64-entry RAS. The indirect predictor is a tagless target table indexed by
a hash of the branch PC and folded global history; returns never consult
it (the RAS supplies their targets).
"""

from __future__ import annotations

from typing import List, Optional

from repro.branch.history import GlobalHistory
from repro.common.rng import mix_hash


class IndirectPredictor:
    """Gshare-style tagless indirect target table."""

    #: History bits hashed into the index.
    HISTORY_BITS = 18

    def __init__(self, history: GlobalHistory, entries: int = 4096) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        self.entries = entries
        self._mask = entries - 1
        self._targets: List[int] = [0] * entries
        self._fold = history.register_fold(
            self.HISTORY_BITS, entries.bit_length() - 1
        )

    def _index(self, pc: int) -> int:
        return (mix_hash(pc) ^ self._fold.value) & self._mask

    def predict(self, pc: int) -> Optional[int]:
        """Predicted target for the indirect branch at *pc* (None = cold)."""
        target = self._targets[self._index(pc)]
        return target or None

    def update(self, pc: int, target: int) -> None:
        """Record the resolved target (immediate update model)."""
        self._targets[self._index(pc)] = target


class ReturnAddressStack:
    """Bounded return address stack.

    Overflow discards the oldest entry (circular behaviour); underflow
    returns None, which the simulator treats as a mispredicted return.
    """

    def __init__(self, depth: int = 64) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = depth
        self._stack: List[int] = []

    def push(self, return_pc: int) -> None:
        if len(self._stack) >= self.depth:
            self._stack.pop(0)
        self._stack.append(return_pc)

    def pop(self) -> Optional[int]:
        if not self._stack:
            return None
        return self._stack.pop()

    def top(self) -> Optional[int]:
        return self._stack[-1] if self._stack else None

    def __len__(self) -> int:
        return len(self._stack)

    def clear(self) -> None:
        self._stack.clear()
