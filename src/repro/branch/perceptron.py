"""Hashed perceptron conditional branch predictor.

Models the predictor of Table 1: a 64 KB hashed perceptron in the spirit
of Jiménez & Lin / Tarjan & Skadron as shipped with ChampSim — 16 weight
tables indexed by hashes of the PC and geometrically spaced global-history
segments (0–232 bits), 8-bit weights, summed and thresholded.

The total size is a constructor knob because Fig. 11b shrinks the
predictor from 64 KB down to 2 KB to raise branch MPKI.
"""

from __future__ import annotations

from typing import List

from repro.branch.history import GlobalHistory
from repro.common.rng import mix_hash

#: Geometrically spaced history lengths for the 16 tables (0..232 bits).
HISTORY_LENGTHS = (0, 3, 5, 8, 12, 17, 24, 33, 44, 58, 75, 96, 121, 151, 187, 232)

_WEIGHT_MAX = 127
_WEIGHT_MIN = -128


class HashedPerceptron:
    """Hashed perceptron direction predictor.

    Parameters
    ----------
    history:
        The shared :class:`GlobalHistory` (folded views are registered on
        construction).
    size_kb:
        Total storage in KB; divided evenly among the tables with one
        byte per weight. 64 KB -> 4096 entries per table.
    """

    def __init__(self, history: GlobalHistory, size_kb: int = 64) -> None:
        if size_kb <= 0:
            raise ValueError("size_kb must be positive")
        self.size_kb = size_kb
        entries = (size_kb * 1024) // len(HISTORY_LENGTHS)
        # Round down to a power of two, minimum 32 entries per table.
        table_entries = 32
        while table_entries * 2 <= entries:
            table_entries *= 2
        self.table_entries = table_entries
        self._mask = table_entries - 1
        self._index_width = table_entries.bit_length() - 1
        self.tables: List[List[int]] = [
            [0] * table_entries for _ in HISTORY_LENGTHS
        ]
        self._folds = [
            history.register_fold(length, self._index_width) if length else None
            for length in HISTORY_LENGTHS
        ]
        #: Training threshold (classic perceptron margin rule).
        self.theta = 2 * len(HISTORY_LENGTHS) + 14

    # -- prediction ------------------------------------------------------------

    def _indices(self, pc: int) -> List[int]:
        mask = self._mask
        pc_hash = mix_hash(pc)
        indices = []
        for t, fold in enumerate(self._folds):
            if fold is None:
                indices.append(pc_hash & mask)
            else:
                indices.append((pc_hash ^ fold.value ^ (t << 3)) & mask)
        return indices

    def predict(self, pc: int):
        """Return ``(taken, sum, indices)``.

        The indices are returned so :meth:`update` can train the exact
        entries that produced the prediction (the history advances between
        prediction and update in the simulator's immediate-update model,
        so recomputing them later would train the wrong rows).
        """
        indices = self._indices(pc)
        total = 0
        tables = self.tables
        for t, idx in enumerate(indices):
            total += tables[t][idx]
        return total >= 0, total, indices

    def update(self, taken: bool, total: int, indices: List[int]) -> None:
        """Train on the resolved outcome using the prediction-time state."""
        predicted = total >= 0
        if predicted == taken and abs(total) > self.theta:
            return
        delta = 1 if taken else -1
        tables = self.tables
        for t, idx in enumerate(indices):
            w = tables[t][idx] + delta
            if w > _WEIGHT_MAX:
                w = _WEIGHT_MAX
            elif w < _WEIGHT_MIN:
                w = _WEIGHT_MIN
            tables[t][idx] = w

    @property
    def storage_bytes(self) -> int:
        """Actual modelled storage (weights only)."""
        return len(self.tables) * self.table_entries
