"""Back-end timing models: scoreboarded OoO core and the ideal ILP limit."""

from repro.backend.scoreboard import IdealBackend, OoOBackend

__all__ = ["IdealBackend", "OoOBackend"]
