"""Back-end timing models.

The simulator is one-pass: instructions arrive in trace (program) order
with a decode-ready cycle, and the back-end computes dispatch, complete
and commit cycles with O(1) work per instruction using ring buffers:

* in-order dispatch, ``width`` per cycle, bounded by ROB occupancy;
* dataflow issue: an instruction issues when its sources are ready
  (register scoreboard) and a port of its class is free (3 load / 2
  store ports, Table 1);
* loads get their latency from the data-side memory hierarchy;
* in-order commit, ``width`` per cycle.

:class:`IdealBackend` implements the Fig.-11a limit study: only data
dependencies constrain execution inside an 8 K-instruction window, every
instruction takes one cycle, and the whole window can retire at once.
"""

from __future__ import annotations

from typing import Tuple

from repro.trace.trace import NUM_REGS


class OoOBackend:
    """Scoreboarded out-of-order core per Table 1."""

    def __init__(
        self,
        memory=None,
        rob_size: int = 352,
        width: int = 16,
        frontend_queue: int = 128,
        load_ports: int = 3,
        store_ports: int = 2,
        branch_latency: int = 1,
        alu_latency: int = 1,
    ) -> None:
        self.memory = memory
        self.rob_size = rob_size
        self.width = width
        self.frontend_queue = frontend_queue
        self.branch_latency = branch_latency
        self.alu_latency = alu_latency
        self._reg_ready = [0] * NUM_REGS
        self._commit_ring = [0] * rob_size
        self._commit_width_ring = [0] * width
        self._dispatch_width_ring = [0] * width
        self._fq_ring = [0] * frontend_queue
        self._load_ring = [0] * load_ports
        self._store_ring = [0] * store_ports
        self._last_commit = 0
        self._count = 0
        self._loads = 0
        self._stores = 0

    # -- front-end coupling ------------------------------------------------------

    def fetch_gate(self, index: int) -> int:
        """Earliest cycle instruction *index* may leave the fetch stage
        (decode/allocate queue occupancy: at most ``frontend_queue``
        instructions between fetch and dispatch)."""
        if index < self.frontend_queue:
            return 0
        return self._fq_ring[index % self.frontend_queue]

    # -- admission ------------------------------------------------------------------

    def admit(
        self,
        index: int,
        decode_ready: int,
        pc: int,
        is_branch: bool,
        is_load: bool,
        is_store: bool,
        dst: int,
        src1: int,
        src2: int,
        maddr: int,
    ) -> Tuple[int, int]:
        """Admit one instruction; returns ``(complete, commit)`` cycles."""
        width = self.width
        # In-order dispatch: width/cycle, ROB space required.
        dispatch = decode_ready + 1
        if index >= width:
            prev = self._dispatch_width_ring[index % width] + 1
            if prev > dispatch:
                dispatch = prev
        if index >= self.rob_size:
            rob_free = self._commit_ring[index % self.rob_size]
            if rob_free > dispatch:
                dispatch = rob_free
        self._dispatch_width_ring[index % width] = dispatch
        self._fq_ring[index % self.frontend_queue] = dispatch

        # Dataflow readiness.
        ready = dispatch + 1
        regs = self._reg_ready
        if src1 >= 0 and regs[src1] > ready:
            ready = regs[src1]
        if src2 >= 0 and regs[src2] > ready:
            ready = regs[src2]

        # Port arbitration + latency.
        if is_load:
            ring = self._load_ring
            slot = self._loads % len(ring)
            issue = max(ready, ring[slot] + 1)
            ring[slot] = issue
            self._loads += 1
            if self.memory is not None:
                complete = self.memory.load(pc, maddr, issue)
            else:
                complete = issue + 5
        elif is_store:
            ring = self._store_ring
            slot = self._stores % len(ring)
            issue = max(ready, ring[slot] + 1)
            ring[slot] = issue
            self._stores += 1
            if self.memory is not None:
                self.memory.store(pc, maddr, issue)
            complete = issue + 1
        elif is_branch:
            complete = ready + self.branch_latency
        else:
            complete = ready + self.alu_latency

        if dst >= 0:
            regs[dst] = complete

        # In-order commit, width/cycle.
        commit = complete
        if commit < self._last_commit:
            commit = self._last_commit
        if index >= width:
            prev = self._commit_width_ring[index % width] + 1
            if prev > commit:
                commit = prev
        self._commit_width_ring[index % width] = commit
        self._commit_ring[index % self.rob_size] = commit
        self._last_commit = commit
        self._count += 1
        return complete, commit


class IdealBackend:
    """ILP-limited back-end for the Fig.-11a limit study (§6.5.2).

    All data dependencies are enforced, every instruction executes in one
    cycle with unlimited functional units, and the whole 8 K window can
    retire in one cycle — performance is bounded only by the front end
    and true dependence chains.
    """

    def __init__(self, window: int = 8192) -> None:
        self.window = window
        self._reg_ready = [0] * NUM_REGS
        self._commit_ring = [0] * window
        self._last_commit = 0

    def fetch_gate(self, index: int) -> int:
        if index < self.window:
            return 0
        return self._commit_ring[index % self.window]

    def admit(
        self,
        index: int,
        decode_ready: int,
        pc: int,
        is_branch: bool,
        is_load: bool,
        is_store: bool,
        dst: int,
        src1: int,
        src2: int,
        maddr: int,
    ) -> Tuple[int, int]:
        ready = decode_ready + 1
        regs = self._reg_ready
        if src1 >= 0 and regs[src1] > ready:
            ready = regs[src1]
        if src2 >= 0 and regs[src2] > ready:
            ready = regs[src2]
        complete = ready + 1
        if dst >= 0:
            regs[dst] = complete
        commit = complete if complete >= self._last_commit else self._last_commit
        self._commit_ring[index % self.window] = commit
        self._last_commit = commit
        return complete, commit
