#!/usr/bin/env python3
"""Explore BTB hierarchy design: homogeneous vs heterogeneous, and slot
replacement policies.

Part 1 compares homogeneous hierarchies against the heterogeneous
B-BTB-L1 / R-BTB-L2 design the paper sketches as future work (§3.6.2).
Part 2 sweeps the victim-selection policy for R-BTB branch slots (§6.3).

Usage::

    python examples/hierarchy_explorer.py [--length N]
"""

import argparse

from repro.analysis import format_table, geomean
from repro.backend.scoreboard import OoOBackend
from repro.btb.rbtb import RegionBTB
from repro.core.config import bbtb, build_simulator, hetero_btb, ibtb, rbtb
from repro.core.runner import run_suite
from repro.core.simulator import Simulator
from repro.frontend.engine import PredictionEngine
from repro.memory.hierarchy import MemoryConfig, MemoryHierarchy
from repro.trace import SMOKE_SUITE, get_trace


def part1_hierarchies(length: int) -> None:
    rows = []
    for cfg in (ibtb(16), bbtb(1, splitting=True), hetero_btb(1, 2), hetero_btb(1, 3)):
        results = run_suite(cfg, SMOKE_SUITE, length=length, warmup=length // 4)
        rows.append(
            (
                cfg.label,
                f"{geomean([r.ipc for r in results]):.3f}",
                f"{sum(r.l1_btb_hit_rate for r in results) / len(results) * 100:.1f}%",
                f"{sum(r.l2_btb_hit_rate for r in results) / len(results) * 100:.1f}%",
                f"{sum(r.structure.get('l2_redundancy', 0) for r in results) / len(results):.3f}",
            )
        )
    print(format_table(("hierarchy", "gmean IPC", "L1 hit", "L1+L2 hit", "L2 dup"), rows))


def part2_policies(length: int) -> None:
    base = rbtb(2)
    l1, l2 = base.geometries()
    rows = []
    for policy in ("lru", "fifo", "uncond_first", "random"):
        ipcs = []
        for name in SMOKE_SUITE:
            trace = get_trace(name, length)
            memory = MemoryHierarchy(MemoryConfig(scale=base.scale))
            sim = Simulator(
                trace=trace,
                btb=RegionBTB(l1, l2, slots_per_entry=2, slot_policy=policy),
                engine=PredictionEngine(),
                backend=OoOBackend(memory=memory),
                memory=memory,
            )
            ipcs.append(sim.run(warmup=length // 4).ipc)
        rows.append((policy, f"{geomean(ipcs):.4f}"))
    print(format_table(("R-BTB 2BS slot policy", "gmean IPC"), rows))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--length", type=int, default=60_000)
    args = parser.parse_args()
    print("== homogeneous vs heterogeneous hierarchies ==")
    part1_hierarchies(args.length)
    print("\n== branch-slot replacement policies ==")
    part2_policies(args.length)


if __name__ == "__main__":
    main()
