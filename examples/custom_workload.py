#!/usr/bin/env python3
"""Define a custom synthetic workload and study BTB sensitivity on it.

Shows the full workload pipeline the library exposes: build a
:class:`~repro.trace.ProgramSpec` describing your binary's shape (block
sizes, branch mix, loop behaviour, footprint), synthesize a dynamic
trace, characterize it, then sweep MB-BTB pull policies on it.

Usage::

    python examples/custom_workload.py
"""

from repro.core.config import build_simulator, mbbtb
from repro.trace import ProgramSpec, build_program, synthesize_trace


def main() -> None:
    # A microservice-like binary: tiny basic blocks, very call-heavy,
    # with wide virtual dispatch and modest loops.
    spec = ProgramSpec(
        seed=1234,
        n_functions=180,
        blocks_per_function_mean=12,
        block_body_mean=3.2,
        w_call=0.24,
        w_indirect_call=0.05,
        w_never_taken=0.40,
        loop_trips_mean=6,
        dispatch_fanout=32,
    )
    program = build_program(spec)
    print(f"static program: {len(program.functions)} functions, "
          f"{program.static_instructions()} instructions "
          f"({program.static_instructions() * 4 / 1024:.1f} KB)")

    trace = synthesize_trace(program, 120_000, seed=42, name="microservice")
    stats = trace.stats()
    print(f"dynamic trace: {len(trace)} instructions, "
          f"mean BB size {trace.mean_basic_block_size():.2f}, "
          f"touched footprint {stats.get('code_footprint_bytes') / 1024:.1f} KB\n")

    for policy in ("uncond", "calldir", "allbr"):
        sim = build_simulator(mbbtb(2, policy), trace)
        result = sim.run(warmup=30_000)
        print(
            f"MB-BTB 2BS {policy:8s}  IPC {result.ipc:6.3f}   "
            f"fetch PCs/access {result.fetch_pcs_per_access:5.2f}   "
            f"misfetch PKI {result.misfetch_pki:5.2f}"
        )


if __name__ == "__main__":
    main()
