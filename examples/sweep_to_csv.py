#!/usr/bin/env python3
"""Run a configuration sweep and export flat CSV/JSON for post-processing.

Demonstrates the analysis-export API: sweep a few configurations over the
smoke suite, flatten every (config, workload) result into rows and write
``sweep.csv`` / ``sweep.json`` for pandas/R/spreadsheets.

Usage::

    python examples/sweep_to_csv.py [outdir] [--length N] [--jobs N]
"""

import argparse
import os

from repro import SMOKE_SUITE, bbtb, ibtb, mbbtb, rbtb
from repro.analysis import results_to_rows, write_csv, write_json
from repro.core.runner import run_suite


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("outdir", nargs="?", default="sweep_out")
    parser.add_argument("--length", type=int, default=40_000)
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (results identical to serial)",
    )
    args = parser.parse_args()

    configs = [ibtb(16), rbtb(3), bbtb(1, splitting=True), mbbtb(2, "allbr")]
    labelled = []
    for config in configs:
        print(f"running {config.label} ...")
        results = run_suite(
            config, SMOKE_SUITE, length=args.length, warmup=args.length // 4,
            jobs=args.jobs,
        )
        labelled.append((config.label, results))

    rows = results_to_rows(labelled)
    os.makedirs(args.outdir, exist_ok=True)
    csv_path = os.path.join(args.outdir, "sweep.csv")
    json_path = os.path.join(args.outdir, "sweep.json")
    write_csv(csv_path, rows)
    write_json(json_path, rows)
    print(f"\nwrote {len(rows)} rows to {csv_path} and {json_path}")
    print("columns:", ", ".join(rows[0]))


if __name__ == "__main__":
    main()
