#!/usr/bin/env python3
"""Quickstart: simulate one BTB configuration on one server workload.

Runs the realistic I-BTB 16 machine (Table 1, scaled) on the synthetic
``web_frontend`` trace and prints the headline metrics the paper reports
per configuration: IPC, branch MPKI, misfetch PKI, BTB hit rates and
fetch PCs generated per BTB access.

Usage::

    python examples/quickstart.py [workload] [length]
"""

import sys

from repro import ibtb, run_one
from repro.trace import SERVER_SUITE


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "web_frontend"
    length = int(sys.argv[2]) if len(sys.argv) > 2 else 160_000
    if workload not in SERVER_SUITE:
        raise SystemExit(
            f"unknown workload {workload!r}; pick one of: {', '.join(SERVER_SUITE)}"
        )

    config = ibtb(16)
    print(f"simulating {config.label} on {workload} ({length} instructions)...")
    result = run_one(config, workload, length=length, warmup=length // 4)

    print(f"\n  IPC                  {result.ipc:8.3f}")
    print(f"  cycles               {result.cycles:8d}")
    print(f"  branch MPKI          {result.branch_mpki:8.2f}")
    print(f"  misfetch PKI         {result.misfetch_pki:8.2f}")
    print(f"  L1 BTB hit rate      {result.l1_btb_hit_rate * 100:7.1f}%")
    print(f"  L1+L2 BTB hit rate   {result.l2_btb_hit_rate * 100:7.1f}%")
    print(f"  fetch PCs / access   {result.fetch_pcs_per_access:8.2f}")
    print(f"  L1 slot occupancy    {result.structure.get('l1_slot_occupancy', 0):8.2f}")


if __name__ == "__main__":
    main()
