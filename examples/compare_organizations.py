#!/usr/bin/env python3
"""Compare the four BTB organizations on the server suite (mini Fig. 5/8).

Sweeps realistic I-BTB 16, the best R-BTB (2L1 3BS), B-BTB 1BS with
splitting and MB-BTB 2BS AllBr over a subset of the workload suite,
normalizes per-workload IPC to the idealistic I-BTB 16 and prints the
paper-style whisker summary.

Usage::

    python examples/compare_organizations.py [--full] [--length N]
"""

import argparse

from repro import IDEAL_IBTB16, SERVER_SUITE, SMOKE_SUITE, bbtb, ibtb, mbbtb, rbtb
from repro.analysis import whisker_table
from repro.core.runner import compare_to_baseline


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="use the full 12-workload suite")
    parser.add_argument("--length", type=int, default=80_000, help="instructions per trace")
    args = parser.parse_args()

    suite = SERVER_SUITE if args.full else SMOKE_SUITE
    configs = [
        ibtb(16),
        rbtb(3, interleaved=True),
        bbtb(1, splitting=True),
        mbbtb(2, "allbr"),
    ]
    print(f"running {len(configs)} configs x {len(suite)} workloads "
          f"({args.length} instructions each)...\n")
    compared = compare_to_baseline(
        configs, IDEAL_IBTB16, suite, length=args.length, warmup=args.length // 4
    )
    boxes = [(cc.config.label, cc.box) for cc in compared]
    print(whisker_table(boxes, "IPC relative to ideal I-BTB 16"))
    print()
    for cc in compared:
        print(
            f"{cc.config.label:22s} gmean IPC {cc.geomean_ipc:6.3f}   "
            f"fetch PCs/access {cc.mean_fetch_pcs:5.2f}"
        )


if __name__ == "__main__":
    main()
