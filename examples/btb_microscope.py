#!/usr/bin/env python3
"""Drive the BTB organizations directly on a hand-written code snippet.

Reproduces the paper's Fig. 2 walkthrough: a function whose label
``foo_mid`` is both a fall-through and a branch target, so a Block BTB
allocates overlapping ("synonym") entries that duplicate branch metadata,
while a Region BTB cannot duplicate by construction. Also shows MB-BTB
pulling the target block of an unconditional branch into its entry.

Usage::

    python examples/btb_microscope.py
"""

from repro.btb.base import BTBGeometry
from repro.btb.bbtb import BlockBTB
from repro.btb.mbbtb import MultiBlockBTB
from repro.btb.rbtb import RegionBTB
from repro.common.types import BranchType
from repro.frontend.engine import PredictionEngine
from repro.trace.trace import Trace


def snippet_paths():
    """Two dynamic paths through Fig.-2-style code.

    Path A enters at 0x100 and takes the conditional at 0x104 to
    foo_mid (0x11C); path B falls through 0x104 and reaches foo_mid
    sequentially — both paths then execute the taken branch at 0x11C.
    """
    path_a = Trace(name="A")
    path_a.append(0x100)
    path_a.append(0x104, BranchType.COND_DIRECT, True, 0x11C)   # bz foo_mid
    path_a.append(0x11C, BranchType.COND_DIRECT, True, 0x200)   # foo_mid: bz out
    path_a.append(0x200)
    path_a.validate()

    path_b = Trace(name="B")
    for pc in range(0x104, 0x11C, 4):
        if pc == 0x104:
            path_b.append(pc, BranchType.COND_DIRECT, False, 0)
        else:
            path_b.append(pc)
    path_b.append(0x11C, BranchType.COND_DIRECT, True, 0x200)
    path_b.append(0x200)
    path_b.validate()
    return path_a, path_b


def show_bbtb_redundancy() -> None:
    print("--- B-BTB: synonym blocks duplicate branch 0x11C (Fig. 2) ---")
    geom = BTBGeometry(16, 4)
    btb = BlockBTB(geom, BTBGeometry(32, 4), slots_per_entry=2)
    eng = PredictionEngine()
    path_a, path_b = snippet_paths()
    # Path A: block starting at 0x100; redirect at 0x104 -> block at 0x11C.
    btb.scan(0x100, 0, path_a, eng)
    btb.scan(0x11C, 2, path_a, eng)
    # Path B: block starting at 0x104 reaches 0x11C sequentially.
    btb.scan(0x104, 0, path_b, eng)
    entries = list(btb.store.level_entries(1))
    for e in sorted(entries, key=lambda e: e.start):
        slots = ", ".join(f"{s.pc:#x}" for s in e.slots)
        print(f"  block entry {e.start:#x}: tracks [{slots}]")
    print(f"  redundancy ratio: {btb.redundancy_ratio(1):.2f} "
          "(branch 0x11c lives in two entries)\n")


def show_rbtb_no_redundancy() -> None:
    print("--- R-BTB: one region entry, no duplication ---")
    btb = RegionBTB(BTBGeometry(16, 4), BTBGeometry(32, 4), slots_per_entry=4)
    eng = PredictionEngine()
    path_a, path_b = snippet_paths()
    btb.scan(0x100, 0, path_a, eng)
    btb.scan(0x11C, 2, path_a, eng)
    btb.scan(0x104, 0, path_b, eng)
    for e in sorted(btb.store.level_entries(1), key=lambda e: e.base):
        slots = ", ".join(f"{s.pc:#x}" for s in e.slots)
        print(f"  region entry {e.base:#x}: tracks [{slots}]")
    print(f"  redundancy ratio: {btb.redundancy_ratio(1):.2f}\n")


def show_mbbtb_pull() -> None:
    print("--- MB-BTB: unconditional branch pulls its target block ---")
    btb = MultiBlockBTB(
        BTBGeometry(16, 4), BTBGeometry(32, 4), slots_per_entry=2,
        pull_policy="uncond",
    )
    eng = PredictionEngine()
    tr = Trace(name="chain")
    tr.append(0x300)
    tr.append(0x304, BranchType.UNCOND_DIRECT, True, 0x500)  # b next
    tr.append(0x500)
    tr.append(0x504, BranchType.UNCOND_DIRECT, True, 0x700)  # b out
    tr.append(0x700)
    tr.validate()
    btb.scan(0x300, 0, tr, eng)  # learn + pull 0x500's block
    btb.scan(0x300, 0, tr, eng)  # learn 0x504 inside the pulled block
    access = btb.scan(0x300, 0, tr, eng)
    _lvl, entry = btb.store.lookup(0x300)
    print(f"  entry 0x300 chains {len(entry.blocks)} blocks: "
          + ", ".join(f"{start:#x}" for start, _len in entry.blocks))
    print(f"  one access provided {access.count} fetch PCs across "
          f"{access.blocks} blocks (ends at {access.next_pc:#x})")


def main() -> None:
    show_bbtb_redundancy()
    show_rbtb_no_redundancy()
    show_mbbtb_pull()


if __name__ == "__main__":
    main()
